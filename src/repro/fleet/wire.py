"""Deterministic wire plane: framed messaging between fleet replicas.

PR 9's fleet passed speculation jobs, AP snapshots, pool syncs, gossip,
and block commits between replicas as plain in-process calls.  This
module replaces that seam with a real message protocol that stays
byte-identical under a hostile network:

* every message is an :class:`Envelope` — canonical-JSON framed,
  per-(sender, destination, channel) sequence-numbered, and stamped
  with the shard-map generation at send time; delivery decodes the
  frame and hands the *decoded* payload to the handler, so the
  serialization seam is exercised on every single message (AP trees and
  block bodies ride as in-process attachments — data plane by
  reference; the control plane is what crosses the wire);
* the :class:`NetworkSim` routes every transmission through the
  ``net.*`` fault sites (:mod:`repro.fleet.faults`): seeded per-link
  ``drop`` / ``duplicate`` / ``reorder`` / ``delay`` behaviors, plus
  ``partition`` — an isolated replica set whose cross-cut traffic is
  *parked* and delivered on heal (payloads carry their logical
  timestamps, so healed deliveries apply effects at the original
  times);
* reliable channels get **at-least-once** delivery: un-acked messages
  retransmit under deadline-bounded exponential backoff (the edge
  ``RetryBudget`` discipline), and after ``escalate_after`` attempts a
  transmission *escalates* — it bypasses fault evaluation, the
  last-resort path that keeps even a p=1.0 drop sweep convergent;
* receivers turn at-least-once into **exactly-once, order-preserving**
  effects via per-(sender, channel) monotonic sequence windows: stale
  sequences are deduplicated, future sequences wait in a bounded
  hold-back buffer, and effects apply strictly in send order.  The
  in-flight and hold-back maps are bounded with the deterministic
  :class:`~repro.edge.limits.LruMap`, so a lossy link cannot grow
  memory without bound;
* :class:`FailureDetector` consumes the (unreliable) heartbeat channel
  and feeds ring ``leave``/``join`` decisions — membership follows
  *observed* silence, not an in-process crash notification;
* :class:`WarmthTracker` folds the per-replica cache-warmth samples
  carried on heartbeats into an EWMA the router uses for
  warmth-weighted read placement.

Determinism: all fault draws come from the injector's seeded per-site
streams, delivery order is a heap keyed ``(deliver_at, counter)`` (FIFO
on a clean network), and retransmit backoff is a pure function of the
attempt count.  Time inside :meth:`WirePlane.flush` is a *micro-clock*:
it fast-forwards past retransmit backoffs without ever moving the
outer event clock, so a flush-to-quiescence barrier before each
speculation tick and each block leaves heard times, ``ready_at``
clocks, and every Table 2/3 column byte-identical to the in-process
fleet — and to the single-node serial run.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.edge.limits import LruMap
from repro.errors import SimulationError
from repro.faults.injector import NULL_INJECTOR
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry

from .faults import (
    SITE_NET_DELAY,
    SITE_NET_DROP,
    SITE_NET_DUPLICATE,
    SITE_NET_REORDER,
)

#: The supervisor's network endpoint (block feed, gossip ingress,
#: heartbeat sink) — a node id that is never a replica id.
INGRESS = -1

#: Internal channel prefix for acknowledgements (never user-handled).
_ACK_CHANNEL = "#ack"

#: Hard bound on flush work (deliveries + retry rounds) — a pure
#: backstop: escalation guarantees quiescence long before this.
_FLUSH_GUARD = 1_000_000


@dataclass
class WireConfig:
    """Tunables for the wire plane (simulated seconds throughout)."""

    #: Heartbeat cadence (heartbeats ride the supervisor's ticks).
    heartbeat_interval: float = 2.0
    #: Silence before the failure detector declares a replica dead.
    suspect_after: float = 5.0
    #: Coordinator lease duration and the remaining-validity margin
    #: below which the holder renews (a fresh quorum round).
    lease_seconds: float = 6.0
    lease_renew_margin: float = 3.0
    #: Reliable-channel retransmit backoff (exponential, deterministic).
    retry_base_seconds: float = 0.25
    retry_factor: float = 2.0
    #: Transmission attempts before a message escalates (bypasses
    #: fault evaluation — the last-resort delivery path).
    escalate_after: int = 4
    #: Bounds on the per-link reliability state (LRU-evicted beyond).
    inflight_capacity: int = 4096
    holdback_capacity: int = 512
    #: Default ``net.delay`` latency and ``net.reorder`` displacement
    #: on the flush micro-clock (rule magnitude overrides).
    delay_seconds: float = 0.25
    reorder_seconds: float = 0.5
    #: Default ``net.partition`` duration (rule magnitude overrides).
    partition_seconds: float = 6.0
    #: EWMA factor for heartbeat-carried cache-warmth samples.
    warmth_alpha: float = 0.3


@dataclass
class Envelope:
    """One framed message (the unit every ``net.*`` fault acts on)."""

    src: int
    dst: int
    channel: str
    seq: int
    generation: int
    payload: dict
    frame: str = ""
    #: Data plane by reference: AP trees / block bodies / reports ride
    #: outside the JSON frame (the control plane is what is framed).
    attachment: object = None
    reliable: bool = True
    #: Escalated past fault evaluation (last-resort delivery).
    forced: bool = False

    def framed(self) -> str:
        if not self.frame:
            self.frame = canonical_json({
                "src": self.src, "dst": self.dst,
                "channel": self.channel, "seq": self.seq,
                "generation": self.generation, "payload": self.payload,
            })
        return self.frame


@dataclass
class _Inflight:
    """Sender-side retry state for one un-acked reliable envelope."""

    envelope: Envelope
    order: int
    attempts: int = 1
    next_retry: float = 0.0


class _RecvState:
    """Receiver-side (sender, channel) sequence window."""

    __slots__ = ("next_seq", "holdback")

    def __init__(self, holdback_capacity: int) -> None:
        self.next_seq = 0
        self.holdback = LruMap(holdback_capacity)


class NetworkSim:
    """The seeded hostile network: per-transmission fault evaluation,
    a delivery heap, and partitions that park cross-cut traffic."""

    def __init__(self, config: WireConfig, injector=NULL_INJECTOR,
                 counters: Optional[Dict[str, object]] = None) -> None:
        self.config = config
        self.injector = injector
        self._queue: List[Tuple[float, int, Envelope]] = []
        self._counter = 0
        self._parked: List[Tuple[int, Envelope]] = []
        self.isolated: FrozenSet[int] = frozenset()
        self.partition_until: Optional[float] = None
        self.partitions = 0
        self.heals = 0
        #: Optional obs counters (name -> Counter) bumped per event.
        self.counters = counters or {}

    def _count(self, name: str) -> None:
        counter = self.counters.get(name)
        if counter is not None:
            counter.inc()

    # -- partitions ------------------------------------------------------

    def cut(self, a: int, b: int) -> bool:
        """Is the a<->b link severed by the active partition?"""
        if not self.isolated:
            return False
        return (a in self.isolated) != (b in self.isolated)

    def partition(self, replicas, now: float, seconds: float) -> None:
        self.isolated = frozenset(replicas)
        self.partition_until = now + seconds
        self.partitions += 1

    def heal(self, now: float) -> int:
        """End the partition; parked envelopes re-enter the delivery
        queue in their original send order, at ``now`` — their payloads
        carry the logical timestamps effects are applied at."""
        self.isolated = frozenset()
        self.partition_until = None
        released = 0
        for order, env in sorted(self._parked):
            self._counter += 1
            heapq.heappush(self._queue, (now, self._counter, env))
            released += 1
        self._parked = []
        self.heals += 1
        return released

    def maybe_heal(self, now: float) -> int:
        if self.partition_until is not None \
                and now >= self.partition_until:
            return self.heal(now)
        return 0

    # -- transmission ----------------------------------------------------

    def transmit(self, env: Envelope, now: float,
                 stats: Optional[Dict[str, int]] = None) -> None:
        """Put one envelope on the wire (faults evaluated here)."""
        env.framed()
        if self.cut(env.src, env.dst):
            self._counter += 1
            self._parked.append((self._counter, env))
            self._count("parked")
            if stats is not None:
                stats["parked"] = stats.get("parked", 0) + 1
            return
        copies = 1
        extra_delay = 0.0
        if not env.forced and self.injector.enabled:
            ctx = {"channel": env.channel, "src": env.src,
                   "dst": env.dst, "seq": env.seq}
            if self.injector.evaluate(SITE_NET_DROP, **ctx) is not None:
                self._count("dropped")
                if stats is not None:
                    stats["dropped"] = stats.get("dropped", 0) + 1
                return
            if self.injector.evaluate(SITE_NET_DUPLICATE,
                                      **ctx) is not None:
                copies = 2
                self._count("duplicated")
                if stats is not None:
                    stats["duplicated"] = stats.get("duplicated", 0) + 1
            rule = self.injector.evaluate(SITE_NET_REORDER, **ctx)
            if rule is not None:
                extra_delay += (rule.magnitude
                                or self.config.reorder_seconds)
                self._count("reordered")
                if stats is not None:
                    stats["reordered"] = stats.get("reordered", 0) + 1
            rule = self.injector.evaluate(SITE_NET_DELAY, **ctx)
            if rule is not None:
                extra_delay += (rule.magnitude
                                or self.config.delay_seconds)
                self._count("delayed")
                if stats is not None:
                    stats["delayed"] = stats.get("delayed", 0) + 1
        for _ in range(copies):
            self._counter += 1
            heapq.heappush(self._queue,
                           (now + extra_delay, self._counter, env))

    def pop(self) -> Optional[Tuple[float, Envelope]]:
        if not self._queue:
            return None
        deliver_at, _, env = heapq.heappop(self._queue)
        return deliver_at, env

    @property
    def parked_count(self) -> int:
        return len(self._parked)


Handler = Callable[[dict, object, float], None]


class WirePlane:
    """Reliable, idempotent, ordered messaging over the hostile net."""

    def __init__(self, config: Optional[WireConfig] = None,
                 injector=NULL_INJECTOR,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or WireConfig()
        registry = registry or MetricsRegistry()
        obs = registry.scope("net")
        self.sim = NetworkSim(self.config, injector, counters={
            "dropped": obs.counter("dropped"),
            "duplicated": obs.counter("duplicated"),
            "reordered": obs.counter("reordered"),
            "delayed": obs.counter("delayed"),
            "parked": obs.counter("parked"),
        })
        self.c_sent = obs.counter("sent")
        self.c_delivered = obs.counter("delivered")
        self.c_effects = obs.counter("effects")
        self.c_acks = obs.counter("acks")
        self.c_retries = obs.counter("retries")
        self.c_escalations = obs.counter("escalations")
        self.c_dedup = obs.counter("dedup_dropped")
        self.c_held = obs.counter("holdback_held")
        self.c_heartbeats = obs.counter("heartbeats")
        self._g_inflight = obs.gauge("inflight")
        self._handlers: Dict[Tuple[int, str], Handler] = {}
        self._next_seq: Dict[Tuple[int, int, str], int] = {}
        self._inflight: LruMap = LruMap(self.config.inflight_capacity)
        self._recv: Dict[Tuple[int, int, str], _RecvState] = {}
        self._order = 0
        #: High-water marks (the soak regression's evidence that a
        #: lossy link cannot grow memory without bound).
        self.inflight_high_water = 0
        self.holdback_high_water = 0
        #: Per-link delivery/retry/dedup ledger for reporting.
        self.links: Dict[Tuple[int, int, str], Dict[str, int]] = {}

    # -- registration ----------------------------------------------------

    def register(self, dst: int, channel: str, handler: Handler) -> None:
        self._handlers[(dst, channel)] = handler

    def reset_peer(self, replica_id: int) -> None:
        """A replica restarted: volatile link state on both ends of its
        links is gone.  Sequence windows restart from zero; effects are
        idempotent upstream (pool dedup, applied-block guards), so
        at-least-once redelivery stays safe."""
        self._next_seq = {key: seq for key, seq in self._next_seq.items()
                          if replica_id not in (key[0], key[1])}
        self._recv = {key: state for key, state in self._recv.items()
                      if replica_id not in (key[0], key[1])}
        stale = [key for key in self._inflight.keys()
                 if replica_id in (key[0], key[1])]
        for key in stale:
            self._inflight.pop(key)

    # -- sending ---------------------------------------------------------

    def _link(self, src: int, dst: int, channel: str) -> Dict[str, int]:
        link = self.links.get((src, dst, channel))
        if link is None:
            link = {}
            self.links[(src, dst, channel)] = link
        return link

    def send(self, src: int, dst: int, channel: str, payload: dict,
             now: float, attachment: object = None,
             reliable: bool = True) -> Envelope:
        key = (src, dst, channel)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        env = Envelope(src=src, dst=dst, channel=channel, seq=seq,
                       generation=self._generation(), payload=payload,
                       attachment=attachment, reliable=reliable)
        stats = self._link(src, dst, channel)
        stats["sent"] = stats.get("sent", 0) + 1
        self.c_sent.inc()
        if reliable:
            self._order += 1
            self._inflight.set(
                (src, dst, channel, seq),
                _Inflight(envelope=env, order=self._order,
                          next_retry=now + self.config.retry_base_seconds))
            self.inflight_high_water = max(self.inflight_high_water,
                                           len(self._inflight))
        self.sim.transmit(env, now, stats)
        return env

    #: Hook the supervisor overrides so envelopes carry the live
    #: shard-map generation.
    generation_source: Optional[Callable[[], int]] = None

    def _generation(self) -> int:
        if self.generation_source is not None:
            return self.generation_source()
        return 0

    # -- the flush-to-quiescence barrier ---------------------------------

    def flush(self, now: float) -> float:
        """Deliver everything deliverable, retrying un-acked reliable
        messages until the reachable world is quiescent.

        Returns the final micro-clock.  The micro-clock fast-forwards
        past retransmit backoffs; the caller's event clock is never
        moved — flush is a barrier, not a delay.
        """
        clock = now
        for _ in range(_FLUSH_GUARD):
            item = self.sim.pop()
            if item is not None:
                deliver_at, env = item
                clock = max(clock, deliver_at)
                self._receive(env, clock)
                continue
            due = self._retryable()
            if not due:
                self._g_inflight.set(len(self._inflight))
                return clock
            clock = max(clock, min(rec.next_retry for rec in due))
            for rec in sorted(due, key=lambda r: (r.next_retry, r.order)):
                if rec.next_retry <= clock:
                    self._retransmit(rec, clock)
        raise SimulationError("wire flush did not quiesce")

    def _retryable(self) -> List[_Inflight]:
        return [rec for key, rec in
                [(key, self._inflight.get(key))
                 for key in list(self._inflight.keys())]
                if rec is not None
                and not self.sim.cut(rec.envelope.src, rec.envelope.dst)]

    def _retransmit(self, rec: _Inflight, clock: float) -> None:
        rec.attempts += 1
        env = rec.envelope
        if rec.attempts >= self.config.escalate_after and not env.forced:
            env.forced = True
            self.c_escalations.inc()
            stats = self._link(env.src, env.dst, env.channel)
            stats["escalated"] = stats.get("escalated", 0) + 1
        rec.next_retry = clock + (
            self.config.retry_base_seconds
            * (self.config.retry_factor ** (rec.attempts - 1)))
        self.c_retries.inc()
        stats = self._link(env.src, env.dst, env.channel)
        stats["retries"] = stats.get("retries", 0) + 1
        self.sim.transmit(env, clock, stats)

    # -- receiving -------------------------------------------------------

    def _receive(self, env: Envelope, at: float) -> None:
        if env.channel == _ACK_CHANNEL:
            # Ack for (original sender=env.dst, receiver=env.src).
            acked = (env.dst, env.src, env.payload["channel"],
                     env.payload["seq"])
            if self._inflight.pop(acked) is not None:
                self.c_acks.inc()
            return
        state = self._recv.get((env.dst, env.src, env.channel))
        if state is None:
            state = _RecvState(self.config.holdback_capacity)
            self._recv[(env.dst, env.src, env.channel)] = state
        if env.reliable:
            self._ack(env, at)
        stats = self._link(env.src, env.dst, env.channel)
        if not env.reliable:
            # Unreliable window: newest wins, stale copies vanish.
            if env.seq < state.next_seq:
                self.c_dedup.inc()
                stats["dedup"] = stats.get("dedup", 0) + 1
                return
            state.next_seq = env.seq + 1
            self._deliver(env, at)
            return
        if env.seq < state.next_seq or env.seq in state.holdback:
            self.c_dedup.inc()
            stats["dedup"] = stats.get("dedup", 0) + 1
            return
        if env.seq > state.next_seq:
            state.holdback.set(env.seq, env)
            self.c_held.inc()
            self.holdback_high_water = max(self.holdback_high_water,
                                           len(state.holdback))
            return
        self._deliver(env, at)
        state.next_seq += 1
        while True:
            held = state.holdback.pop(state.next_seq)
            if held is None:
                break
            self._deliver(held, at)
            state.next_seq += 1

    def _ack(self, env: Envelope, at: float) -> None:
        ack = Envelope(src=env.dst, dst=env.src, channel=_ACK_CHANNEL,
                       seq=0, generation=env.generation,
                       payload={"channel": env.channel, "seq": env.seq},
                       reliable=False, forced=env.forced)
        self.sim.transmit(ack, at)

    def _deliver(self, env: Envelope, at: float) -> None:
        handler = self._handlers.get((env.dst, env.channel))
        if handler is None:
            raise SimulationError(
                f"no handler for channel {env.channel!r} at node "
                f"{env.dst}")
        # The effect is computed from the *decoded frame* — the
        # serialization seam is exercised on every delivery.
        decoded = json.loads(env.framed())
        self.c_delivered.inc()
        self.c_effects.inc()
        stats = self._link(env.src, env.dst, env.channel)
        stats["delivered"] = stats.get("delivered", 0) + 1
        handler(decoded["payload"], env.attachment, at)

    # -- partitions (supervisor-driven) ----------------------------------

    def partition(self, replicas, now: float, seconds: float) -> None:
        self.sim.partition(replicas, now, seconds)

    def heal(self, now: float) -> int:
        return self.sim.heal(now)

    def maybe_heal(self, now: float) -> int:
        return self.sim.maybe_heal(now)

    @property
    def isolated(self) -> FrozenSet[int]:
        return self.sim.isolated

    def reachable(self, a: int, b: int) -> bool:
        return not self.sim.cut(a, b)

    # -- reporting -------------------------------------------------------

    def link_report(self) -> Dict[str, Dict[str, int]]:
        """Per-link delivery/retry/dedup counters, canonical keys."""
        report = {}
        for (src, dst, channel), stats in sorted(self.links.items()):
            report[f"{src}->{dst}:{channel}"] = dict(sorted(stats.items()))
        return report

    def summary(self) -> dict:
        return {
            "sent": self.c_sent.value,
            "delivered": self.c_delivered.value,
            "effects": self.c_effects.value,
            "acks": self.c_acks.value,
            "retries": self.c_retries.value,
            "escalations": self.c_escalations.value,
            "dedup_dropped": self.c_dedup.value,
            "holdback_held": self.c_held.value,
            "partitions": self.sim.partitions,
            "parked": self.sim.parked_count,
            "inflight_high_water": self.inflight_high_water,
            "holdback_high_water": self.holdback_high_water,
        }


class FailureDetector:
    """Heartbeat-silence detector feeding ring membership.

    ``heard`` consumes heartbeat deliveries; ``suspects`` names the
    replicas whose silence has exceeded ``suspect_after`` — membership
    decisions follow *observed* silence over the wire, never an
    in-process crash notification."""

    def __init__(self, suspect_after: float,
                 members: Tuple[int, ...] = ()) -> None:
        self.suspect_after = suspect_after
        self.last_seen: Dict[int, float] = {rid: 0.0 for rid in members}
        self.incarnations: Dict[int, int] = {}

    def heard(self, replica_id: int, at: float,
              incarnation: int = 0) -> bool:
        """Record a heartbeat; returns True on a fresh incarnation
        (a restarted process announcing itself)."""
        fresh = self.incarnations.get(replica_id) != incarnation
        self.incarnations[replica_id] = incarnation
        previous = self.last_seen.get(replica_id)
        if previous is None or at > previous:
            self.last_seen[replica_id] = at
        return fresh

    def suspects(self, now: float, members) -> List[int]:
        return sorted(
            rid for rid in members
            if now - self.last_seen.get(rid, 0.0) >= self.suspect_after)


class WarmthTracker:
    """EWMA of heartbeat-carried cache-warmth samples per replica."""

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self._ewma: Dict[int, float] = {}

    def update(self, replica_id: int, sample: float) -> float:
        previous = self._ewma.get(replica_id)
        if previous is None:
            value = sample
        else:
            value = self.alpha * sample + (1.0 - self.alpha) * previous
        self._ewma[replica_id] = value
        return value

    def warmth(self, replica_id: int) -> float:
        return self._ewma.get(replica_id, 0.0)

    def snapshot(self) -> Dict[int, float]:
        return {rid: round(value, 9)
                for rid, value in sorted(self._ewma.items())}
