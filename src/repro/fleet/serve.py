"""Fleet loops: dataset replay and request serving over N replicas.

:func:`fleet_replay` is the fleet analogue of
:func:`repro.sim.emulator.replay` — the same event-heap cadence
(gossip, speculation ticks, blocks), a baseline node for the speedup
denominator, and joined per-transaction records.  Its records, roots,
and Table 2/3 columns are **byte-identical to the single-node replay
at every shard count** (``tests/test_fleet_equivalence.py`` is the
proof); sharding moves the speculation work, never the answers.

:func:`run_fleet_serving` is the fleet analogue of
:func:`repro.edge.serve.run_serving`: a client schedule dispatched
through the :class:`~repro.fleet.router.FleetRouter` into per-replica
edge servers, with retries against a shared budget and a byte-stable
serving trace (now carrying the placement: replica, hops, penalties).
Lifecycle faults (``fleet.replica_crash``) fire on speculation ticks;
restarts replay shard journals mid-run.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.node import BaselineNode, TxRecord
from repro.edge import rpc
from repro.edge.clients import ScheduledRequest
from repro.edge.limits import Deadline, RetryBudget, RetryConfig
from repro.edge.server import EdgeConfig
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry
from repro.sim.emulator import JoinedRecord
from repro.utils.hashing import hash_words, keccak_int

from .faults import (
    NET_SITES,
    SITE_NET_PARTITION,
    net_fault_plan,
)
from .router import FleetRouter, RouteInfo
from .supervisor import FleetConfig, FleetSupervisor
from .wire import WireConfig

#: Event priorities, matching the emulator and the edge serving loop.
PRIO_TX = 0
PRIO_TICK = 1
PRIO_BLOCK = 2
PRIO_REQUEST = 3

#: Named wire-plane network profiles for ``repro serve --net-profile``.
NET_PROFILES = ("clean", "lossy", "partition")


def net_profile_config(profile: str, shards: int = 4, seed: int = 0,
                       journal_dir=None) -> FleetConfig:
    """A :class:`FleetConfig` with the wire plane on and the named
    hostile-network profile driving it:

    * ``clean`` — wire framing/sequencing on, no faults (the profile
      whose commitments must be byte-identical to the in-process
      fleet);
    * ``lossy`` — 1% drop + duplicate + reorder + delay on every link
      (the at-least-once/exactly-once machinery under steady fire);
    * ``partition`` — periodic coordinator isolation (lease expiry,
      quorum re-election, journal catch-up on heal).
    """
    if profile not in NET_PROFILES:
        raise ValueError(f"unknown net profile {profile!r}; "
                         f"choose from {NET_PROFILES}")
    plan = None
    if profile == "lossy":
        loss_sites = tuple(site for site in NET_SITES
                           if site != SITE_NET_PARTITION)
        plan = net_fault_plan(seed=seed, probability=0.01,
                              sites=loss_sites)
    elif profile == "partition":
        plan = net_fault_plan(seed=seed, probability=0.25,
                              sites=(SITE_NET_PARTITION,))
    return FleetConfig(shards=shards, wire=WireConfig(),
                       fault_plan=plan, journal_dir=journal_dir)


@dataclass
class FleetRun:
    """One fleet replay: merged records plus the runtime itself."""

    dataset_name: str
    observer: str
    shards: int
    records: List[JoinedRecord] = field(default_factory=list)
    roots_matched: int = 0
    blocks_executed: int = 0
    speculation_jobs: int = 0
    supervisor: Optional[FleetSupervisor] = None
    registry: Optional[MetricsRegistry] = None

    def state_roots(self) -> List[int]:
        return [report.state_root
                for report in self.supervisor.reports]


def fleet_replay(dataset, observer: str = "live",
                 config: Optional[FleetConfig] = None,
                 speculation_tick: float = 2.0) -> FleetRun:
    """Replay ``dataset`` through a baseline node and the fleet."""
    config = config or FleetConfig()
    registry = MetricsRegistry()
    baseline = BaselineNode(dataset.genesis_world.copy(),
                            registry=MetricsRegistry())
    supervisor = FleetSupervisor(dataset.genesis_world,
                                 dataset.genesis_block, config,
                                 registry=registry)
    run = FleetRun(dataset_name=dataset.name, observer=observer,
                   shards=config.shards, supervisor=supervisor,
                   registry=registry)

    events: List[tuple] = []
    counter = 0
    for arrival, tx in dataset.tx_arrivals[observer]:
        events.append((arrival, PRIO_TX, counter, ("tx", tx)))
        counter += 1
    horizon = dataset.blocks[-1][0] if dataset.blocks else 0.0
    tick = speculation_tick
    while tick < horizon:
        events.append((tick, PRIO_TICK, counter, ("tick", None)))
        counter += 1
        tick += speculation_tick
    for arrival, block in dataset.blocks:
        events.append((arrival, PRIO_BLOCK, counter, ("block", block)))
        counter += 1
    heapq.heapify(events)

    kinds = dataset.kinds
    baseline_records: Dict[int, TxRecord] = {}
    while events:
        now, _, _, (kind, payload) = heapq.heappop(events)
        if kind == "tx":
            supervisor.on_transaction(payload, now)
        elif kind == "tick":
            supervisor.tick(now)
            run.speculation_jobs += supervisor.run_speculation(now)
        else:
            run.speculation_jobs += supervisor.run_speculation(now)
            base_report = baseline.process_block(payload)
            fleet_report = supervisor.process_block(payload, now)
            run.blocks_executed += 1
            if base_report.state_root == fleet_report.state_root:
                run.roots_matched += 1
            for record in base_report.records:
                baseline_records[record.tx_hash] = record
            for record in fleet_report.records:
                base = baseline_records.get(record.tx_hash)
                if base is None:
                    continue
                run.records.append(JoinedRecord(
                    tx_hash=record.tx_hash,
                    block_number=record.block_number,
                    kind=kinds.get(record.tx_hash, "?"),
                    baseline_cost=base.cost,
                    forerunner_cost=record.cost,
                    baseline_cpu=base.cpu_units,
                    baseline_io_units=base.io_units,
                    baseline_io_reads=base.io_reads,
                    gas_used=record.gas_used,
                    heard=record.heard,
                    heard_delay=record.heard_delay,
                    outcome=record.outcome,
                    ap_ready=record.ap_ready,
                    perfect=record.perfect,
                    first_context_perfect=record.first_context_perfect,
                    speculated_contexts=record.speculated_contexts,
                    shortcut_hits=record.shortcut_hits,
                    executed_nodes=record.executed_nodes,
                    skipped_nodes=record.skipped_nodes,
                ))
    supervisor.close()
    return run


# -- serving -------------------------------------------------------------


@dataclass
class FleetServingResult:
    """Everything one fleet serving run produced."""

    dataset_name: str
    shards: int
    offered: int = 0
    good: int = 0
    retries_scheduled: int = 0
    trace_lines: List[str] = field(default_factory=list)
    served_latencies: List[int] = field(default_factory=list)
    final_status: Dict[Tuple[int, str], str] = field(default_factory=dict)
    routes: List[RouteInfo] = field(default_factory=list)
    supervisor: Optional[FleetSupervisor] = None
    router: Optional[FleetRouter] = None
    retry_budget: Optional[RetryBudget] = None

    @property
    def goodput(self) -> float:
        return self.good / self.offered if self.offered else 1.0

    @property
    def accepted_txs(self) -> int:
        return sum(server.c_accepted.value
                   for server in self.router.servers.values())

    def commitments(self) -> list:
        """Fleet commitments (the containment + equivalence anchor):
        per-block merged state roots and receipt cores — the same
        shape :meth:`repro.edge.serve.ServingResult.commitments` has."""
        return [
            {"block": report.block_number,
             "root": report.state_root,
             "receipts": [(record.tx_hash, record.gas_used,
                           record.success)
                          for record in report.records]}
            for report in self.supervisor.reports]


def run_fleet_serving(dataset, scenario,
                      fleet_config: Optional[FleetConfig] = None,
                      edge_config: Optional[EdgeConfig] = None,
                      retry_config: Optional[RetryConfig] = None,
                      retry_seed: int = 0,
                      observer: str = "live",
                      speculation_tick: float = 2.0
                      ) -> FleetServingResult:
    """Serve ``scenario`` against a fleet replaying ``dataset``.

    Fleet chaos (``fleet.*`` sites) comes from
    ``fleet_config.fault_plan``; the supervisor's injector drives the
    lifecycle/handoff sites and the router's routing sites alike.
    """
    fleet_config = fleet_config or FleetConfig()
    registry = MetricsRegistry()
    supervisor = FleetSupervisor(dataset.genesis_world,
                                 dataset.genesis_block, fleet_config,
                                 registry=registry)
    router = FleetRouter(supervisor, edge_config or EdgeConfig(),
                         injector=supervisor.injector)
    retry_budget = RetryBudget(retry_config, seed=retry_seed)
    result = FleetServingResult(dataset_name=dataset.name,
                                shards=fleet_config.shards,
                                supervisor=supervisor, router=router,
                                retry_budget=retry_budget)

    events: List[tuple] = []
    counter = 0
    for arrival, tx in dataset.tx_arrivals.get(observer, []):
        events.append((arrival, PRIO_TX, counter, ("tx", tx)))
        counter += 1
    horizon = dataset.blocks[-1][0] if dataset.blocks else 0.0
    last_request = max((request.at for request in scenario),
                       default=0.0)
    horizon = max(horizon, last_request)
    tick = speculation_tick
    while tick < horizon:
        events.append((tick, PRIO_TICK, counter, ("tick", None)))
        counter += 1
        tick += speculation_tick
    for arrival, block in dataset.blocks:
        events.append((arrival, PRIO_BLOCK, counter, ("block", block)))
        counter += 1
    for request in scenario:
        events.append((request.at, PRIO_REQUEST, counter,
                       ("request", (request, 1, None))))
        counter += 1
    result.offered = len(scenario)
    heapq.heapify(events)

    def handle(now: float, request, attempt: int,
               deadline: Optional[Deadline]) -> None:
        nonlocal counter
        if deadline is None:
            deadline = Deadline.from_budget(
                now, request.deadline_units, router.config.service_rate)
        response, outcome, route = router.dispatch(
            request.raw, request.client_id, now,
            weight=request.weight, deadline=deadline, attempt=attempt)
        result.routes.append(route)
        result.trace_lines.append(canonical_json({
            "t": round(now, 6), "id": request.req_id,
            "client": request.client_id, "attempt": attempt,
            "replica": route.replica, "hops": route.hops,
            "outcome": outcome.as_dict(), "response": response}))
        key = (request.client_id, request.req_id)
        result.final_status[key] = outcome.status
        if outcome.status == "served":
            result.served_latencies.append(outcome.latency_units)
            if attempt == 1:
                retry_budget.on_success()
            return
        if rpc.is_retryable(outcome.code):
            retry_at = retry_budget.next_retry(
                request.client_id, attempt, now, deadline)
            if retry_at is not None:
                result.retries_scheduled += 1
                heapq.heappush(events, (retry_at, PRIO_REQUEST, counter,
                                        ("request", (request, attempt + 1,
                                                     deadline))))
                counter += 1

    while events:
        now, _, _, (kind, payload) = heapq.heappop(events)
        if kind == "tx":
            supervisor.on_transaction(payload, now)
        elif kind == "tick":
            supervisor.tick(now)
            supervisor.run_speculation(now)
        elif kind == "block":
            supervisor.run_speculation(now)
            report = supervisor.process_block(payload, now)
            router.on_block(payload, report)
        else:
            request, attempt, deadline = payload
            handle(now, request, attempt, deadline)

    supervisor.close()
    result.good = sum(1 for status in result.final_status.values()
                      if status == "served")
    return result


# -- synthetic send-storm scenario ---------------------------------------

_STORM_TAG = keccak_int(b"fleet.storm")


def send_storm_scenario(seed: int, rate_per_second: float,
                        duration: float, clients: int = 48,
                        start: float = 0.5) -> List[ScheduledRequest]:
    """An open-loop storm of unique ``eth_sendRawTransaction`` frames.

    Senders are drawn from a seeded per-client stream, so the storm
    spreads uniformly over the consistent-hash ring — the workload the
    accepted-tx throughput scaling gate measures.  Every transaction is
    unique (fresh sender, nonce 0): acceptance is the bottleneck under
    test, not dedup.
    """
    requests: List[ScheduledRequest] = []
    per_client = rate_per_second / max(1, clients)
    for client_id in range(clients):
        rng = random.Random(hash_words((seed, _STORM_TAG, client_id)))
        now = start + rng.random() / max(per_client, 1e-6)
        seq = 0
        while now < start + duration:
            sender = rng.getrandbits(160)
            to = rng.getrandbits(160)
            params = [{"from": f"{sender:#x}", "to": f"{to:#x}",
                       "value": 1, "gasPrice": 1 + rng.randrange(8),
                       "nonce": 0}]
            req_id = f"s{client_id}-{seq}"
            requests.append(ScheduledRequest(
                at=round(now, 6), client_id=client_id, req_id=req_id,
                method="eth_sendRawTransaction", params=params,
                weight=1.0, deadline_units=120_000,
                raw=rpc.make_request("eth_sendRawTransaction", params,
                                     req_id)))
            seq += 1
            now += rng.expovariate(per_client) \
                if per_client > 0 else duration
    requests.sort(key=lambda request: (request.at, request.client_id,
                                       request.req_id))
    return requests
