"""Generation-stamped coordinator leases with quorum vote ledgers.

The fleet's coordinator runs the admission cycle.  PR 9 promoted a new
coordinator by direct in-process assignment — safe only because a
crashed replica provably stopped.  Over a real network a partitioned
ex-coordinator *hasn't* stopped, so authority must come from a
**lease**: a time-bounded grant backed by a majority of ring members.

Safety is by construction, then double-checked by an oracle:

* every election opens a fresh **term** (the lease generation);
* each member casts **at most one vote per term** — the ledger
  silently refuses a second vote, so two candidates can never both
  assemble a majority in one term (any two majorities intersect);
* :meth:`LeaseRegistry.grant` asserts no different holder was already
  recorded for the term, and :meth:`assert_single_holder_per_term`
  re-verifies the whole history (the partition test's oracle);
* a lease expires after ``lease_seconds`` of simulated time; admission
  is gated on a *valid* lease, so a minority-side ex-coordinator halts
  admission the moment its lease lapses and can never renew (its vote
  requests are parked at the partition cut — no quorum, no lease).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class Lease:
    """One granted coordinator lease (term = lease generation)."""

    term: int
    holder: int
    granted_at: float
    expires_at: float
    votes: Tuple[int, ...]


class LeaseRegistry:
    """The vote ledger, grant history, and single-holder oracle."""

    def __init__(self, lease_seconds: float) -> None:
        self.lease_seconds = lease_seconds
        self._next_term = 0
        #: term -> member -> candidate (one vote per member per term).
        self.votes: Dict[int, Dict[int, int]] = {}
        #: term -> (candidate, member) grants received by the candidate.
        self._tally: Dict[Tuple[int, int], List[int]] = {}
        #: term -> lease — the oracle's ground truth.
        self.leases: Dict[int, Lease] = {}
        self.history: List[Lease] = []
        self.current: Optional[Lease] = None
        self.elections = 0
        self.denied_votes = 0

    # -- the election protocol (driven over the wire) --------------------

    def open_term(self) -> int:
        term = self._next_term
        self._next_term += 1
        self.elections += 1
        return term

    def cast_vote(self, term: int, member: int, candidate: int) -> bool:
        """Member-side: vote for ``candidate`` in ``term`` unless this
        member already voted in the term.  Late (healed) duplicate
        requests for an old term are refused here, never re-voted."""
        ledger = self.votes.setdefault(term, {})
        if member in ledger:
            if ledger[member] != candidate:
                self.denied_votes += 1
            return ledger[member] == candidate
        ledger[member] = candidate
        return True

    def record_grant(self, term: int, candidate: int, member: int) -> None:
        """Candidate-side: one granted vote arrived over the wire."""
        grants = self._tally.setdefault((term, candidate), [])
        if member not in grants:
            grants.append(member)

    def tally(self, term: int, candidate: int) -> List[int]:
        return sorted(self._tally.get((term, candidate), []))

    def grant(self, term: int, candidate: int, now: float) -> Lease:
        """Close an election the candidate won.  Asserts the term has
        no *different* holder — the split-brain impossibility."""
        existing = self.leases.get(term)
        if existing is not None:
            if existing.holder != candidate:  # pragma: no cover
                raise SimulationError(
                    f"split brain: term {term} granted to "
                    f"{existing.holder} and {candidate}")
            return existing
        lease = Lease(term=term, holder=candidate, granted_at=now,
                      expires_at=now + self.lease_seconds,
                      votes=tuple(self.tally(term, candidate)))
        self.leases[term] = lease
        self.history.append(lease)
        self.current = lease
        return lease

    # -- validity --------------------------------------------------------

    def valid(self, holder: int, now: float) -> bool:
        lease = self.current
        return (lease is not None and lease.holder == holder
                and now < lease.expires_at)

    def remaining(self, now: float) -> float:
        if self.current is None:
            return 0.0
        return max(0.0, self.current.expires_at - now)

    # -- the oracle ------------------------------------------------------

    def assert_single_holder_per_term(self) -> None:
        """Re-verify lease safety over the whole trace: at most one
        holder per term in the grant history, and no member ever voted
        twice in one term (the ledger shape makes a double vote
        unrepresentable, so this checks the majority math instead:
        every lease's vote set is a majority of the voters recorded
        for its term's electorate)."""
        holders: Dict[int, int] = {}
        for lease in self.history:
            previous = holders.setdefault(lease.term, lease.holder)
            if previous != lease.holder:  # pragma: no cover
                raise SimulationError(
                    f"lease oracle: term {lease.term} has holders "
                    f"{previous} and {lease.holder}")
        for term, ledger in self.votes.items():
            lease = self.leases.get(term)
            if lease is None:
                continue
            backers = [member for member, candidate in ledger.items()
                       if candidate == lease.holder]
            if set(lease.votes) - set(backers):  # pragma: no cover
                raise SimulationError(
                    f"lease oracle: term {term} counts votes the "
                    f"ledger never recorded")

    def summary(self) -> dict:
        return {
            "terms": self._next_term,
            "elections": self.elections,
            "granted": len(self.history),
            "denied_votes": self.denied_votes,
            "current": None if self.current is None else {
                "term": self.current.term,
                "holder": self.current.holder,
                "expires_at": round(self.current.expires_at, 6),
            },
        }
