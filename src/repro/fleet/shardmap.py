"""Consistent-hash shard map: accounts and contracts -> replicas.

The fleet routes by account locality — Forerunner's predictions, prefix
caches, and AP execution are all keyed by the accounts a transaction
touches, and Saraph & Herlihy's empirical study (PAPERS.md) shows
historical transaction sets partition into low-conflict account groups.
A consistent-hash ring gives that partition three properties the fleet
needs:

* **determinism** — ring points are seeded hashes of
  ``(replica id, virtual node index)``; two runs (and two independent
  routers) agree on every owner without coordination;
* **stability** — a replica join/leave moves only the keys in the
  arcs it gains/loses (~1/N of the space), so rebalances are small and
  the handoff set is computable exactly;
* **total order** — every replica has a canonical *ring position* (its
  lowest point), which the shard pool uses to pick the deterministic
  home shard of a cross-shard entangled transaction.

Generations: every membership change bumps ``generation``.  Routers
carry a generation stamp with each decision, so a stale-map routing
fault (``fleet.stale_shardmap``) is observable and the shard pool can
tell which generation admitted a transaction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.hashing import hash_words, keccak_int

#: Domain-separation tags for ring/key hashing.
_RING_TAG = keccak_int(b"fleet.ring")
_KEY_TAG = keccak_int(b"fleet.key")

#: Virtual nodes per replica: enough to even out arc lengths while
#: keeping rebalance diffs cheap to compute.
DEFAULT_VNODES = 16


def ring_point(replica_id: int, vnode: int) -> int:
    """Deterministic ring coordinate of one virtual node."""
    return hash_words((_RING_TAG, replica_id, vnode))


def key_point(key: int) -> int:
    """Deterministic ring coordinate of an account/contract address."""
    return hash_words((_KEY_TAG, key))


@dataclass(frozen=True)
class Handoff:
    """One key range that changed hands in a rebalance."""

    source: int
    target: int


class ShardMap:
    """The fleet's consistent-hash ring with deterministic rebalance.

    ``replicas`` is the *member* set (an int means ``range(n)``);
    ``owner(key)`` maps any account address to the member owning it.
    ``join``/``leave`` change membership, bump the generation, and
    return nothing — callers that need the handoff set ask
    :meth:`diff_owners` with a snapshot taken before the change (see
    :meth:`snapshot`).
    """

    def __init__(self, replicas: Iterable[int],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if isinstance(replicas, int):
            replicas = range(replicas)
        self.vnodes = vnodes
        self.generation = 0
        self._members: List[int] = []
        self._points: List[int] = []
        self._owners: List[int] = []
        for replica_id in sorted(set(replicas)):
            self._members.append(replica_id)
        if not self._members:
            raise ValueError("a shard map needs at least one replica")
        self._rebuild()

    # -- membership ------------------------------------------------------

    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(self._members)

    def __contains__(self, replica_id: int) -> bool:
        return replica_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def join(self, replica_id: int) -> bool:
        """Add a member; returns True if membership changed."""
        if replica_id in self._members:
            return False
        bisect.insort(self._members, replica_id)
        self.generation += 1
        self._rebuild()
        return True

    def leave(self, replica_id: int) -> bool:
        """Remove a member; returns True if membership changed.

        The last member never leaves — an empty ring routes nothing,
        and the fleet always keeps at least one replica serving.
        """
        if replica_id not in self._members or len(self._members) == 1:
            return False
        self._members.remove(replica_id)
        self.generation += 1
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        pairs = sorted(
            (ring_point(replica_id, vnode), replica_id)
            for replica_id in self._members
            for vnode in range(self.vnodes))
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    # -- routing ---------------------------------------------------------

    def owner(self, key: int) -> int:
        """The member owning account/contract address ``key``."""
        index = bisect.bisect_right(self._points, key_point(key))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]

    def ring_position(self, replica_id: int) -> int:
        """Canonical position of a member: its lowest ring point."""
        return min(ring_point(replica_id, vnode)
                   for vnode in range(self.vnodes))

    def home_shard(self, *keys: Optional[int]) -> int:
        """Deterministic home for a transaction touching ``keys``.

        Single-shard transactions live with their one owner; a
        cross-shard *entangled* transaction is escalated to the
        involved owner with the lowest ring position (a total order
        every router derives independently).
        """
        owners = sorted({self.owner(key) for key in keys
                         if key is not None})
        if not owners:
            return self._members[0]
        if len(owners) == 1:
            return owners[0]
        return min(owners, key=lambda rid: (self.ring_position(rid), rid))

    def successor(self, replica_id: int,
                  exclude: Iterable[int] = ()) -> Optional[int]:
        """The next member after ``replica_id`` in ring-position order,
        skipping ``exclude`` — the router's failover target."""
        banned = set(exclude) | {replica_id}
        candidates = [rid for rid in self._members if rid not in banned]
        if not candidates:
            return None
        ordered = sorted(self._members,
                         key=lambda rid: (self.ring_position(rid), rid))
        start = ordered.index(replica_id) if replica_id in ordered else 0
        for offset in range(1, len(ordered) + 1):
            rid = ordered[(start + offset) % len(ordered)]
            if rid not in banned:
                return rid
        return candidates[0]

    # -- rebalance bookkeeping -------------------------------------------

    def snapshot(self) -> "ShardMapSnapshot":
        """A frozen routing view of the current generation (what a
        stale router keeps using, and what handoffs diff against)."""
        return ShardMapSnapshot(self.generation, tuple(self._points),
                                tuple(self._owners))

    def diff_owners(self, keys: Iterable[int],
                    before: "ShardMapSnapshot"
                    ) -> Dict[int, Handoff]:
        """Per-key handoffs between ``before`` and the live ring.

        Only keys whose owner actually changed appear — the
        consistent-hash stability property makes this the ~1/N set.
        """
        moves: Dict[int, Handoff] = {}
        for key in keys:
            old = before.owner(key)
            new = self.owner(key)
            if old != new:
                moves[key] = Handoff(source=old, target=new)
        return moves


@dataclass(frozen=True)
class ShardMapSnapshot:
    """Immutable routing view of one shard-map generation."""

    generation: int
    points: Tuple[int, ...]
    owners: Tuple[int, ...]

    def owner(self, key: int) -> int:
        index = bisect.bisect_right(self.points, key_point(key))
        if index == len(self.points):
            index = 0
        return self.owners[index]
