"""Fleet supervisor: replica lifecycle under one deterministic loop.

The fleet runs N full node replicas (chain-replica semantics: every
replica executes every block against its own world copy) but shards the
*expensive* part — Forerunner's speculation — by account locality:

* one **coordinator** replica runs the exact single-node prediction /
  admission cycle (its pool hears all gossip, so the candidate stream
  is identical to a single node's);
* each admitted job is dispatched to the **owning replica**'s
  speculator (`:class:`FleetSpecPlane``); worker-lane clocks stay with
  the coordinator, so every AP's ``ready_at`` — and with it every
  Table 2/3 number — is byte-identical to the single-node run;
* at block time the supervisor snapshots each transaction's AP from
  its owner and every replica executes with that shared AP, so all
  replica worlds, caches, and cost trajectories remain identical to
  the single node's (AP walk is read-only; tier choice is
  cost-identical by the PR-6 jit guarantee);
* prefetches fan out to every replica's cache for the same reason.

Lifecycle: a replica crash (``fleet.replica_crash``) removes it from
the shard map (deterministic rebalance + handoff through the sharded
pool), promotes a new coordinator if needed, and schedules a restart.
Restart rebuilds the replica from genesis plus its per-shard recovery
journal (block imports replayed at their recorded clocks), catches up
blocks journaled while it was down from the supervisor's block store,
and resyncs the pending pool from a live peer — converging to a
byte-identical world root, which :meth:`process_block` cross-checks on
every subsequent block.  APs are lost in a crash: speculation is pure
acceleration, so commitments are unaffected (the containment contract
``tests/test_fleet_chaos.py`` enforces).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.core.node import BlockReport, ForerunnerConfig, ForerunnerNode
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.obs.registry import MetricsRegistry
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)

from .faults import SITE_REPLICA_CRASH
from .shardmap import DEFAULT_VNODES, ShardMap
from .shardpool import ShardedTxPool

RECORD_TX = "fleet.tx"
RECORD_BLOCK = "fleet.block"


def _tx_payload(tx: Transaction) -> dict:
    return {
        "sender": tx.sender,
        "to": tx.to,
        "data": tx.data.hex(),
        "value": tx.value,
        "gas_price": tx.gas_price,
        "gas_limit": tx.gas_limit,
        "nonce": tx.nonce,
    }


def _tx_from_payload(data: dict) -> Transaction:
    return Transaction(
        sender=int(data["sender"]),
        to=None if data["to"] is None else int(data["to"]),
        data=bytes.fromhex(data["data"]),
        value=int(data["value"]),
        gas_price=int(data["gas_price"]),
        gas_limit=int(data["gas_limit"]),
        nonce=int(data["nonce"]),
    )


@dataclass
class FleetConfig:
    """Tunables for the multi-replica runtime."""

    #: Replica count (= shard count; each replica owns one shard).
    shards: int = 4
    #: Virtual nodes per replica on the consistent-hash ring.
    vnodes: int = DEFAULT_VNODES
    #: Per-replica node configuration (shared; nodes never mutate it).
    node: ForerunnerConfig = field(default_factory=ForerunnerConfig)
    #: Fleet-level chaos plan (``fleet.*`` sites); ``None`` = no-op.
    fault_plan: object = None
    #: Simulated seconds until a crashed replica restarts.
    restart_delay: float = 4.0
    #: Directory for per-shard recovery journals (``None`` = in-memory
    #: fleet: crash repair falls back to the supervisor's gossip log).
    journal_dir: Optional[str] = None


@dataclass
class Replica:
    """One replica slot: the node, its journal, and lifecycle state."""

    replica_id: int
    node: ForerunnerNode
    registry: MetricsRegistry
    status: str = "up"
    journal: Optional[JournalWriter] = None
    journal_path: Optional[str] = None
    crashes: int = 0
    restarts: int = 0


class FleetSpecPlane:
    """Sharded speculation plane (see :class:`repro.core.node.LocalSpecPlane`).

    Installed on every replica: the coordinator's admission cycle uses
    :meth:`components` to dispatch each job to the owning replica, and
    every replica's block execution uses :meth:`ap_for` to read the
    per-block AP snapshot the supervisor took from the owners — so all
    replicas execute a block with the *same* APs a single node would.
    """

    __slots__ = ("supervisor",)

    def __init__(self, supervisor: "FleetSupervisor") -> None:
        self.supervisor = supervisor

    def components(self, tx: Transaction):
        owner = self.supervisor.replicas[
            self.supervisor.home_of(tx)].node
        return owner.speculator, owner

    def prefetch_targets(self):
        sup = self.supervisor
        return tuple(sup.replicas[rid].node for rid in sup.live())

    def ap_for(self, tx_hash: int):
        aps = self.supervisor.block_aps
        if aps is not None:
            return aps.get(tx_hash)
        return None


class FleetSupervisor:
    """Owns the replicas, the shard map/pool, and the block pipeline."""

    def __init__(self, genesis_world, genesis_block: Block,
                 config: Optional[FleetConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or FleetConfig()
        self.genesis_world = genesis_world
        self.genesis_block = genesis_block
        self.registry = registry or MetricsRegistry()
        plan = self.config.fault_plan
        if plan is not None:
            self.injector = FaultInjector(plan, registry=self.registry)
        else:
            self.injector = NULL_INJECTOR
        self.shardmap = ShardMap(range(self.config.shards),
                                 vnodes=self.config.vnodes)
        self.shardpool = ShardedTxPool(self.shardmap,
                                       registry=self.registry,
                                       injector=self.injector)
        obs = self.registry.scope("fleet")
        self.c_blocks = obs.counter("blocks")
        self.c_txs = obs.counter("transactions")
        self.c_crashes = obs.counter("crashes")
        self.c_restarts = obs.counter("restarts")
        self.c_promotions = obs.counter("promotions")
        self.c_rebalances = obs.counter("rebalances")
        self.c_torn_repaired = obs.counter("torn_repaired")
        self._g_live = obs.gauge("live_replicas")
        self.replicas: Dict[int, Replica] = {}
        #: Block bodies + arrival times (the chain store journals
        #: reference by number).
        self.block_store: Dict[int, Tuple[Block, float]] = {}
        #: Every transaction the fleet ever heard (gossip memory; the
        #: torn-handoff repair's fallback when journals are off).
        self.seen: Dict[int, Tuple[Transaction, float]] = {}
        #: Per-block AP snapshot (set only while replicas execute a
        #: block; read by :meth:`FleetSpecPlane.ap_for`).
        self.block_aps: Optional[Dict[int, object]] = None
        self.reports: List[BlockReport] = []
        self.pending_restarts: List[Tuple[float, int]] = []
        for replica_id in range(self.config.shards):
            self._spawn(replica_id)
        self.coordinator_id = min(self.replicas)
        # The coordinator's admission controller is adopted as the
        # *fleet* admission ledger: every replica shares it, so
        # speculation counts (Table 2's contexts column) and edge
        # deadlines reach one place, exactly as on a single node.  It
        # survives coordinator crashes — it is fleet state, not
        # replica state.
        self.admission = self.replicas[self.coordinator_id].node.admission
        for replica in self.replicas.values():
            replica.node.admission = self.admission
        self._g_live.set(len(self.replicas))

    # -- construction ----------------------------------------------------

    def _journal_path(self, replica_id: int) -> Optional[str]:
        if self.config.journal_dir is None:
            return None
        return os.path.join(self.config.journal_dir,
                            f"shard-{replica_id:02d}.wal")

    def _new_node(self) -> Tuple[ForerunnerNode, MetricsRegistry]:
        # Per-replica registries keep instrument names identical on
        # every replica (no cross-replica scope-suffix drift).
        registry = MetricsRegistry()
        node = ForerunnerNode(self.genesis_world.copy(),
                              self.config.node, registry=registry)
        node.spec_plane = FleetSpecPlane(self)
        node.predictor.observe_block(self.genesis_block)
        return node, registry

    def _spawn(self, replica_id: int) -> None:
        node, registry = self._new_node()
        journal = None
        path = self._journal_path(replica_id)
        if path is not None:
            journal = JournalWriter(path)
        self.replicas[replica_id] = Replica(
            replica_id=replica_id, node=node, registry=registry,
            journal=journal, journal_path=path)

    # -- views -----------------------------------------------------------

    def live(self) -> List[int]:
        """Live replica ids, ascending (the deterministic loop order)."""
        return sorted(rid for rid, replica in self.replicas.items()
                      if replica.status == "up")

    def coordinator(self) -> ForerunnerNode:
        return self.replicas[self.coordinator_id].node

    def node(self, replica_id: int) -> ForerunnerNode:
        return self.replicas[replica_id].node

    def home_of(self, tx: Transaction) -> int:
        return self.shardmap.home_shard(tx.sender, tx.to)

    def is_up(self, replica_id: int) -> bool:
        replica = self.replicas.get(replica_id)
        return replica is not None and replica.status == "up"

    # -- gossip ----------------------------------------------------------

    def on_transaction(self, tx: Transaction, now: float) -> None:
        """A transaction arrived (gossip or edge accept): journal it to
        its home shard, admit it to the sharded pool, and deliver it to
        every live replica (all replicas hear all gossip — that is what
        keeps the coordinator's candidate stream single-node-identical)."""
        if tx.hash not in self.seen:
            self.seen[tx.hash] = (tx, now)
            home = self.home_of(tx)
            journal = self.replicas[home].journal
            if journal is not None:
                journal.append(RECORD_TX, _tx_payload(tx), sync=True,
                               clock={"sim_seconds": round(now, 6),
                                      "tx": tx.hash})
            self.shardpool.add(tx, now)
        for replica_id in self.live():
            self.replicas[replica_id].node.on_transaction(tx, now)

    def requeue(self, tx: Transaction, now: float) -> None:
        """Reorg requeue: back through the owning shard's live queues,
        then into every replica's pending pool."""
        self.seen.setdefault(tx.hash, (tx, now))
        self.shardpool.requeue(tx, now)
        for replica_id in self.live():
            self.replicas[replica_id].node.requeue(tx, now)

    def on_reorg(self) -> None:
        for replica_id in self.live():
            self.replicas[replica_id].node.on_reorg()

    # -- speculation -----------------------------------------------------

    def run_speculation(self, now: float,
                        budget_seconds: Optional[float] = None) -> int:
        """One fleet speculation cycle = the coordinator's cycle (jobs
        land on owning replicas through the plane)."""
        return self.coordinator().run_speculation(now, budget_seconds)

    # -- the block pipeline ----------------------------------------------

    def process_block(self, block: Block, now: float = 0.0) -> BlockReport:
        """Import one block on every live replica.

        Journals the import per shard, snapshots each transaction's AP
        from its owning replica, executes the block on every replica
        (cross-checking that all state roots agree), and merges the
        fleet report from the owning replica of each transaction.
        """
        self.block_store[block.number] = (block, now)
        clock = {"sim_seconds": round(now, 6), "number": block.number}
        for replica_id in self.live():
            journal = self.replicas[replica_id].journal
            if journal is not None:
                journal.append(RECORD_BLOCK,
                               {"number": block.number}, sync=True,
                               clock=clock)
        aps: Dict[int, object] = {}
        for tx in block.transactions:
            owner = self.replicas[self.home_of(tx)].node
            ap = owner.speculator.get_ap(tx.hash)
            if ap is not None:
                aps[tx.hash] = ap
        self.block_aps = aps
        root: Optional[int] = None
        by_owner: Dict[int, Dict[int, object]] = {}
        try:
            for replica_id in self.live():
                report = self.replicas[replica_id].node.process_block(
                    block, now)
                if root is None:
                    root = report.state_root
                elif report.state_root != root:  # pragma: no cover
                    raise SimulationError(
                        f"fleet divergence at block {block.number}: "
                        f"replica {replica_id} root "
                        f"{report.state_root:#x} != {root:#x}")
                by_owner[replica_id] = {
                    record.tx_hash: record for record in report.records}
        finally:
            self.block_aps = None
        records = [by_owner[self.home_of(tx)][tx.hash]
                   for tx in block.transactions]
        self.shardpool.remove_all(tx.hash for tx in block.transactions)
        self.c_blocks.inc()
        self.c_txs.inc(len(records))
        merged = BlockReport(block.number, root or 0, records)
        self.reports.append(merged)
        return merged

    # -- lifecycle -------------------------------------------------------

    def tick(self, now: float) -> None:
        """Lifecycle heartbeat: restart due replicas, then roll the
        crash dice for each live one (``fleet.replica_crash``)."""
        due = [entry for entry in self.pending_restarts
               if entry[0] <= now]
        self.pending_restarts = [entry for entry in self.pending_restarts
                                 if entry[0] > now]
        for _, replica_id in sorted(due):
            self.restart(replica_id, now)
        if not self.injector.enabled:
            return
        for replica_id in self.live():
            if len(self.live()) == 1:
                break  # never crash the last replica
            rule = self.injector.evaluate(
                SITE_REPLICA_CRASH, replica=replica_id,
                tick=int(now * 1000))
            if rule is not None:
                self.crash(replica_id, now)

    def crash(self, replica_id: int, now: float) -> bool:
        """Kill a replica: shard map leave, pool rebalance (handoff),
        coordinator promotion if needed, restart scheduled."""
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "up" \
                or len(self.live()) == 1:
            return False
        replica.status = "down"
        replica.crashes += 1
        if replica.journal is not None:
            replica.journal.close()
            replica.journal = None
        self.shardmap.leave(replica_id)
        self._rebalance(now)
        if replica_id == self.coordinator_id:
            self.coordinator_id = self.live()[0]
            self.c_promotions.inc()
        self.pending_restarts.append(
            (now + self.config.restart_delay, replica_id))
        self.c_crashes.inc()
        self._g_live.set(len(self.live()))
        return True

    def restart(self, replica_id: int, now: float) -> bool:
        """Rebuild a crashed replica: genesis + shard-journal replay,
        block catch-up from the chain store, pool resync from a peer.

        The replayed world must be byte-identical — every replayed
        block's ``state_root`` is validated inside ``process_block``,
        and the next fleet block cross-checks all replicas again.
        """
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "down":
            return False
        node, registry = self._new_node()
        node.admission = self.admission
        replayed_to = -1
        next_seq = 0
        if replica.journal_path is not None \
                and os.path.exists(replica.journal_path):
            truncate_torn_tail(replica.journal_path)
            scan = read_journal(replica.journal_path)
            next_seq = scan.next_seq
            for record in scan.records:
                if record.type != RECORD_BLOCK:
                    continue
                number = int(record.data["number"])
                stored = self.block_store.get(number)
                if stored is None or number <= replayed_to:
                    continue
                block, at = stored
                node.process_block(block, at)
                replayed_to = number
        # Blocks journaled to other shards while this one was down.
        for number in sorted(self.block_store):
            if number > replayed_to:
                block, at = self.block_store[number]
                node.process_block(block, at)
                replayed_to = number
        # Pool/heard resync from a live peer (all replicas hear all
        # gossip, so any peer's view is the canonical one).
        peer = self.coordinator()
        node.pool = dict(peer.pool)
        node.heard = dict(peer.heard)
        node.executed = set(peer.executed)
        node._pool_version += 1
        replica.node = node
        replica.registry = registry
        replica.status = "up"
        replica.restarts += 1
        if replica.journal_path is not None:
            replica.journal = JournalWriter(replica.journal_path,
                                            next_seq=next_seq)
        self.shardmap.join(replica_id)
        self._rebalance(now)
        self.c_restarts.inc()
        self._g_live.set(len(self.live()))
        return True

    def _rebalance(self, now: float) -> None:
        moves, torn = self.shardpool.rebalance()
        self.c_rebalances.inc()
        if torn:
            self._repair_torn(torn, now)
        del moves  # handoffs complete; counts live in fleet.pool.*

    def _repair_torn(self, hashes: List[int], now: float) -> None:
        """Restore transactions lost to a torn handoff.

        Scans the per-shard journals (the durable admission records)
        for the missing hashes; the supervisor's gossip memory is the
        fallback for journal-less fleets.
        """
        todo = set(hashes)
        entries: Dict[int, Tuple[Transaction, float]] = {}
        if self.config.journal_dir is not None:
            for replica in self.replicas.values():
                path = replica.journal_path
                if path is None or not os.path.exists(path):
                    continue
                if replica.journal is not None:
                    replica.journal._handle.flush()
                for record in read_journal(path).records:
                    if record.type != RECORD_TX:
                        continue
                    tx = _tx_from_payload(record.data)
                    if tx.hash in todo:
                        entries[tx.hash] = (
                            tx,
                            float(record.clock.get("sim_seconds", now)))
        executed = self.coordinator().executed
        for tx_hash in sorted(todo):
            found = entries.get(tx_hash) or self.seen.get(tx_hash)
            if found is None or tx_hash in executed:
                continue
            tx, heard = found
            self.shardpool.add(tx, heard)
            self.c_torn_repaired.inc()

    def close(self) -> None:
        for replica in self.replicas.values():
            if replica.journal is not None:
                replica.journal.close()
                replica.journal = None

    # -- reporting -------------------------------------------------------

    def lifecycle_report(self) -> dict:
        return {
            "replicas": {
                str(rid): {
                    "status": replica.status,
                    "crashes": replica.crashes,
                    "restarts": replica.restarts,
                }
                for rid, replica in sorted(self.replicas.items())
            },
            "coordinator": self.coordinator_id,
            "generation": self.shardmap.generation,
            "shard_sizes": {str(k): v for k, v
                            in self.shardpool.shard_sizes().items()},
        }
