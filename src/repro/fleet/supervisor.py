"""Fleet supervisor: replica lifecycle under one deterministic loop.

The fleet runs N full node replicas (chain-replica semantics: every
replica executes every block against its own world copy) but shards the
*expensive* part — Forerunner's speculation — by account locality:

* one **coordinator** replica runs the exact single-node prediction /
  admission cycle (its pool hears all gossip, so the candidate stream
  is identical to a single node's);
* each admitted job is dispatched to the **owning replica**'s
  speculator (`:class:`FleetSpecPlane``); worker-lane clocks stay with
  the coordinator, so every AP's ``ready_at`` — and with it every
  Table 2/3 number — is byte-identical to the single-node run;
* at block time the supervisor snapshots each transaction's AP from
  its owner and every replica executes with that shared AP, so all
  replica worlds, caches, and cost trajectories remain identical to
  the single node's (AP walk is read-only; tier choice is
  cost-identical by the PR-6 jit guarantee);
* prefetches fan out to every replica's cache for the same reason.

Lifecycle: a replica crash (``fleet.replica_crash``) removes it from
the shard map (deterministic rebalance + handoff through the sharded
pool), promotes a new coordinator if needed, and schedules a restart.
Restart rebuilds the replica from genesis plus its per-shard recovery
journal (block imports replayed at their recorded clocks), catches up
blocks journaled while it was down from the supervisor's block store,
and resyncs the pending pool from a live peer — converging to a
byte-identical world root, which :meth:`process_block` cross-checks on
every subsequent block.  APs are lost in a crash: speculation is pure
acceleration, so commitments are unaffected (the containment contract
``tests/test_fleet_chaos.py`` enforces).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.core.node import (
    BlockReport,
    ForerunnerConfig,
    ForerunnerNode,
    tx_from_wire,
    tx_to_wire,
)
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.obs.registry import MetricsRegistry
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)

from .faults import SITE_NET_PARTITION, SITE_REPLICA_CRASH
from .lease import LeaseRegistry
from .shardmap import DEFAULT_VNODES, ShardMap
from .shardpool import ShardedTxPool
from .wire import (
    INGRESS,
    FailureDetector,
    WarmthTracker,
    WireConfig,
    WirePlane,
)

RECORD_TX = "fleet.tx"
RECORD_BLOCK = "fleet.block"

#: Wire-plane channels (one sequence window per (sender, channel)).
CH_GOSSIP = "gossip.tx"
CH_POOL = "pool.sync"
CH_SPEC = "spec.dispatch"
CH_AP = "ap.snapshot"
CH_BLOCK = "block.commit"
CH_ROOT = "block.root"
CH_HEARTBEAT = "net.heartbeat"
CH_VOTE = "lease.request"
CH_GRANT = "lease.grant"


# The canonical transaction wire form lives with the speculation-plane
# seam in :mod:`repro.core.node`; the fleet reuses it for every framed
# channel that carries a transaction.
_tx_payload = tx_to_wire
_tx_from_payload = tx_from_wire


@dataclass
class FleetConfig:
    """Tunables for the multi-replica runtime."""

    #: Replica count (= shard count; each replica owns one shard).
    shards: int = 4
    #: Virtual nodes per replica on the consistent-hash ring.
    vnodes: int = DEFAULT_VNODES
    #: Per-replica node configuration (shared; nodes never mutate it).
    node: ForerunnerConfig = field(default_factory=ForerunnerConfig)
    #: Fleet-level chaos plan (``fleet.*`` sites); ``None`` = no-op.
    fault_plan: object = None
    #: Simulated seconds until a crashed replica restarts.
    restart_delay: float = 4.0
    #: Directory for per-shard recovery journals (``None`` = in-memory
    #: fleet: crash repair falls back to the supervisor's gossip log).
    journal_dir: Optional[str] = None
    #: Wire plane (``None`` = PR-9 in-process calls).  When set, every
    #: inter-replica interaction crosses :class:`repro.fleet.wire`:
    #: framed gossip/pool-sync/dispatch/AP/block messages, heartbeat
    #: failure detection feeding ring membership, and lease-based
    #: coordinator election.
    wire: Optional[WireConfig] = None


@dataclass
class Replica:
    """One replica slot: the node, its journal, and lifecycle state."""

    replica_id: int
    node: ForerunnerNode
    registry: MetricsRegistry
    status: str = "up"
    journal: Optional[JournalWriter] = None
    journal_path: Optional[str] = None
    crashes: int = 0
    restarts: int = 0
    #: Block numbers this node object has applied (the wire plane's
    #: idempotence guard against at-least-once ``block.commit``).
    applied: set = field(default_factory=set)


class FleetSpecPlane:
    """Sharded speculation plane (see :class:`repro.core.node.LocalSpecPlane`).

    Installed on every replica: the coordinator's admission cycle uses
    :meth:`components` to dispatch each job to the owning replica, and
    every replica's block execution uses :meth:`ap_for` to read the
    per-block AP snapshot the supervisor took from the owners — so all
    replicas execute a block with the *same* APs a single node would.
    """

    __slots__ = ("supervisor",)

    def __init__(self, supervisor: "FleetSupervisor") -> None:
        self.supervisor = supervisor

    def components(self, tx: Transaction):
        sup = self.supervisor
        home = sup.home_of(tx)
        if sup.wire is not None:
            return sup.dispatch_speculation(tx, home)
        owner = sup.replicas[home].node
        return owner.speculator, owner

    def serialize_job(self, tx: Transaction) -> dict:
        """Same canonical job frame the local plane produces."""
        return {"hash": tx.hash, "tx": tx_to_wire(tx)}

    def deliver_job(self, payload: dict) -> Transaction:
        """Reconstruct a dispatched job, asserting hash fidelity."""
        tx = tx_from_wire(payload["tx"])
        if tx.hash != int(payload["hash"]):  # pragma: no cover
            raise SimulationError(
                f"spec.dispatch round-trip mismatch: "
                f"{tx.hash:#x} != {int(payload['hash']):#x}")
        return tx

    def prefetch_targets(self):
        sup = self.supervisor
        rids = sup.live()
        if sup.wire is not None:
            rids = [rid for rid in rids
                    if sup.wire.reachable(INGRESS, rid)]
        return tuple(sup.replicas[rid].node for rid in rids)

    def ap_for(self, tx_hash: int):
        aps = self.supervisor.block_aps
        if aps is not None:
            return aps.get(tx_hash)
        return None


class FleetSupervisor:
    """Owns the replicas, the shard map/pool, and the block pipeline."""

    def __init__(self, genesis_world, genesis_block: Block,
                 config: Optional[FleetConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or FleetConfig()
        self.genesis_world = genesis_world
        self.genesis_block = genesis_block
        self.registry = registry or MetricsRegistry()
        plan = self.config.fault_plan
        if plan is not None:
            self.injector = FaultInjector(plan, registry=self.registry)
        else:
            self.injector = NULL_INJECTOR
        self.shardmap = ShardMap(range(self.config.shards),
                                 vnodes=self.config.vnodes)
        self.shardpool = ShardedTxPool(self.shardmap,
                                       registry=self.registry,
                                       injector=self.injector)
        obs = self.registry.scope("fleet")
        self.c_blocks = obs.counter("blocks")
        self.c_txs = obs.counter("transactions")
        self.c_crashes = obs.counter("crashes")
        self.c_restarts = obs.counter("restarts")
        self.c_promotions = obs.counter("promotions")
        self.c_rebalances = obs.counter("rebalances")
        self.c_torn_repaired = obs.counter("torn_repaired")
        self.c_admission_halted = obs.counter("admission_halted")
        self.c_elections = obs.counter("elections")
        self.c_leases = obs.counter("leases_granted")
        self.c_detector_leaves = obs.counter("detector_leaves")
        self.c_detector_joins = obs.counter("detector_joins")
        self._g_live = obs.gauge("live_replicas")
        self.replicas: Dict[int, Replica] = {}
        #: Block bodies + arrival times (the chain store journals
        #: reference by number).
        self.block_store: Dict[int, Tuple[Block, float]] = {}
        #: Every transaction the fleet ever heard (gossip memory; the
        #: torn-handoff repair's fallback when journals are off).
        self.seen: Dict[int, Tuple[Transaction, float]] = {}
        #: Per-block AP snapshot (set only while replicas execute a
        #: block; read by :meth:`FleetSpecPlane.ap_for`).
        self.block_aps: Optional[Dict[int, object]] = None
        self.reports: List[BlockReport] = []
        self.pending_restarts: List[Tuple[float, int]] = []
        for replica_id in range(self.config.shards):
            self._spawn(replica_id)
        self.coordinator_id = min(self.replicas)
        # The coordinator's admission controller is adopted as the
        # *fleet* admission ledger: every replica shares it, so
        # speculation counts (Table 2's contexts column) and edge
        # deadlines reach one place, exactly as on a single node.  It
        # survives coordinator crashes — it is fleet state, not
        # replica state.
        self.admission = self.replicas[self.coordinator_id].node.admission
        for replica in self.replicas.values():
            replica.node.admission = self.admission
        self._g_live.set(len(self.replicas))
        #: Last event time the supervisor saw (the wire plane's send
        #: clock; flush micro-clocks never move it).
        self._now = 0.0
        self.wire: Optional[WirePlane] = None
        self.detector: Optional[FailureDetector] = None
        self.warmth: Optional[WarmthTracker] = None
        self.lease: Optional[LeaseRegistry] = None
        if self.config.wire is not None:
            self._init_wire(self.config.wire)

    def _init_wire(self, wire_config: WireConfig) -> None:
        self.wire = WirePlane(wire_config, injector=self.injector,
                              registry=self.registry)
        self.wire.generation_source = lambda: self.shardmap.generation
        self.detector = FailureDetector(wire_config.suspect_after,
                                        members=tuple(self.replicas))
        self.warmth = WarmthTracker(wire_config.warmth_alpha)
        self.lease = LeaseRegistry(wire_config.lease_seconds)
        #: (block number, replica) -> report, filled by ``block.commit``
        #: deliveries; the merge and the heal cross-check read it.
        self._block_reports: Dict[Tuple[int, int], BlockReport] = {}
        #: block number -> reference root (heal catch-ups re-verify).
        self._root_history: Dict[int, int] = {}
        self._pending_aps: Optional[Dict[int, object]] = None
        self._pending_block: Optional[int] = None
        self.wire.register(INGRESS, CH_HEARTBEAT, self._on_heartbeat)
        self.wire.register(INGRESS, CH_AP, self._on_ap_snapshot)
        self.wire.register(INGRESS, CH_ROOT, self._on_block_root)
        for replica_id in self.replicas:
            self._register_replica_channels(replica_id)
        # Bootstrap lease: term 0 is granted to the initial coordinator
        # by every founding member at t=0 (the moment PR 9 assigned the
        # coordinator by construction).
        term = self.lease.open_term()
        for member in self.shardmap.members:
            self.lease.cast_vote(term, member, self.coordinator_id)
            self.lease.record_grant(term, self.coordinator_id, member)
        self.lease.grant(term, self.coordinator_id, 0.0)
        self.c_leases.inc()

    def _register_replica_channels(self, replica_id: int) -> None:
        wire = self.wire

        def on_gossip(payload, attachment, at, rid=replica_id):
            self._on_gossip(rid, payload)

        def on_pool(payload, attachment, at, rid=replica_id):
            self._on_pool_sync(rid, payload)

        def on_spec(payload, attachment, at, rid=replica_id):
            self._on_spec_dispatch(rid, payload)

        def on_block(payload, attachment, at, rid=replica_id):
            self._on_block_commit(rid, payload, attachment, at)

        def on_vote(payload, attachment, at, rid=replica_id):
            self._on_lease_request(rid, payload, at)

        def on_grant(payload, attachment, at, rid=replica_id):
            self.lease.record_grant(int(payload["term"]),
                                    int(payload["candidate"]),
                                    int(payload["member"]))

        wire.register(replica_id, CH_GOSSIP, on_gossip)
        wire.register(replica_id, CH_POOL, on_pool)
        wire.register(replica_id, CH_SPEC, on_spec)
        wire.register(replica_id, CH_BLOCK, on_block)
        wire.register(replica_id, CH_VOTE, on_vote)
        wire.register(replica_id, CH_GRANT, on_grant)

    # -- construction ----------------------------------------------------

    def _journal_path(self, replica_id: int) -> Optional[str]:
        if self.config.journal_dir is None:
            return None
        return os.path.join(self.config.journal_dir,
                            f"shard-{replica_id:02d}.wal")

    def _new_node(self) -> Tuple[ForerunnerNode, MetricsRegistry]:
        # Per-replica registries keep instrument names identical on
        # every replica (no cross-replica scope-suffix drift).
        registry = MetricsRegistry()
        node = ForerunnerNode(self.genesis_world.copy(),
                              self.config.node, registry=registry)
        node.spec_plane = FleetSpecPlane(self)
        node.predictor.observe_block(self.genesis_block)
        return node, registry

    def _spawn(self, replica_id: int) -> None:
        node, registry = self._new_node()
        journal = None
        path = self._journal_path(replica_id)
        if path is not None:
            journal = JournalWriter(path)
        self.replicas[replica_id] = Replica(
            replica_id=replica_id, node=node, registry=registry,
            journal=journal, journal_path=path)

    # -- views -----------------------------------------------------------

    def live(self) -> List[int]:
        """Live replica ids, ascending (the deterministic loop order)."""
        return sorted(rid for rid, replica in self.replicas.items()
                      if replica.status == "up")

    def coordinator(self) -> ForerunnerNode:
        return self.replicas[self.coordinator_id].node

    def node(self, replica_id: int) -> ForerunnerNode:
        return self.replicas[replica_id].node

    def home_of(self, tx: Transaction) -> int:
        return self.shardmap.home_shard(tx.sender, tx.to)

    def is_up(self, replica_id: int) -> bool:
        replica = self.replicas.get(replica_id)
        return replica is not None and replica.status == "up"

    # -- wire-plane effects (receiver side) ------------------------------

    def _on_gossip(self, replica_id: int, payload: dict) -> None:
        """Delivered ``gossip.tx``: the replica hears the transaction
        at its *carried* heard time (healed deliveries apply late but
        with the original clock — byte-identical heard columns)."""
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "up":
            return  # crashed meanwhile; the restart resyncs from a peer
        tx = _tx_from_payload(payload["tx"])
        replica.node.on_transaction(tx, float(payload["heard"]))

    def _on_pool_sync(self, replica_id: int, payload: dict) -> None:
        """Delivered ``pool.sync``: admit to the home shard's pending
        queue unless the chain already executed it (a heal can deliver
        a sync for a transaction committed during the partition)."""
        tx = _tx_from_payload(payload["tx"])
        live = self.live()
        peer = self.replicas[live[0]].node if live else None
        if peer is not None and tx.hash in peer.executed:
            return
        self.shardpool.add(tx, float(payload["heard"]))

    def _on_spec_dispatch(self, replica_id: int, payload: dict) -> None:
        """Delivered ``spec.dispatch``: reconstruct the job through the
        plane's deliver seam, which asserts frame fidelity per message."""
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "up":
            return
        replica.node.spec_plane.deliver_job(payload)

    def _on_block_commit(self, replica_id: int, payload: dict,
                         attachment, at: float) -> None:
        """Delivered ``block.commit``: execute on the replica at the
        carried clock, once (idempotent under redelivery), and answer
        with the state root for the fleet cross-check."""
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "up":
            return  # down replicas catch up from journals at restart
        number = int(payload["number"])
        if number in replica.applied:
            return
        block = attachment
        if block is None:
            stored = self.block_store.get(number)
            if stored is None:
                return
            block = stored[0]
        report = replica.node.process_block(block, float(payload["at"]))
        replica.applied.add(number)
        self._block_reports[(number, replica_id)] = report
        self.wire.send(replica_id, INGRESS, CH_ROOT,
                       {"number": number, "root": report.state_root,
                        "replica": replica_id}, at)

    def _on_block_root(self, payload: dict, attachment, at: float) -> None:
        """Delivered ``block.root``: cross-check the replica's root
        against the block's reference root (first answer wins; healed
        catch-ups must re-derive the identical root)."""
        number = int(payload["number"])
        root = int(payload["root"])
        expected = self._root_history.get(number)
        if expected is None:
            self._root_history[number] = root
        elif root != expected:  # pragma: no cover
            raise SimulationError(
                f"fleet divergence at block {number}: replica "
                f"{int(payload['replica'])} root {root:#x} != "
                f"{expected:#x}")

    def _on_ap_snapshot(self, payload: dict, attachment, at: float) -> None:
        """Delivered ``ap.snapshot``: an owner shipped one AP for the
        block being executed (stale snapshots for other blocks are
        ignored — APs are pure acceleration)."""
        if (self._pending_aps is None
                or int(payload["block"]) != self._pending_block):
            return
        if attachment is not None:
            self._pending_aps[int(payload["tx"])] = attachment

    def _on_heartbeat(self, payload: dict, attachment, at: float) -> None:
        self.detector.heard(int(payload["replica"]),
                            float(payload["at"]),
                            int(payload["incarnation"]))
        self.warmth.update(int(payload["replica"]),
                           float(payload["warmth"]))

    def _on_lease_request(self, member_id: int, payload: dict,
                          at: float) -> None:
        """Delivered ``lease.request``: a live member casts at most one
        vote per term; granted votes travel back over the wire."""
        if not self.is_up(member_id):
            return
        term = int(payload["term"])
        candidate = int(payload["candidate"])
        if self.lease.cast_vote(term, member_id, candidate):
            self.wire.send(member_id, candidate, CH_GRANT,
                           {"term": term, "candidate": candidate,
                            "member": member_id}, at)

    # -- wire-plane senders ----------------------------------------------

    def dispatch_speculation(self, tx: Transaction, home: int):
        """Dispatch one speculation job to its owning replica over the
        wire (synchronous RPC: send, flush to ack).  Falls back to the
        coordinator's own speculator when the owner is down or across a
        partition — speculation is acceleration, never correctness."""
        replica = self.replicas.get(home)
        coordinator = self.coordinator()
        if (replica is None or replica.status != "up"
                or not self.wire.reachable(self.coordinator_id, home)):
            return coordinator.speculator, coordinator
        if home != self.coordinator_id:
            self.wire.send(self.coordinator_id, home, CH_SPEC,
                           replica.node.spec_plane.serialize_job(tx),
                           self._now)
            self.wire.flush(self._now)
        return replica.node.speculator, replica.node

    def _warmth_sample(self, node: ForerunnerNode) -> float:
        """The replica's cache-warmth sample carried on heartbeats:
        combined prefix-cache + synthesis-dedup hit rate."""
        speculator = node.speculator
        cache = speculator.prefix_cache
        hits = cache.c_hits.value + speculator.c_dedup_hits.value
        misses = cache.c_misses.value + speculator.c_dedup_misses.value
        total = hits + misses
        return round(hits / total, 9) if total else 0.0

    def _wire_tick(self, now: float) -> None:
        """Wire-plane housekeeping on the supervisor's tick cadence:
        heal due partitions, pump heartbeats, run the failure detector
        (membership follows observed silence), roll the partition
        fault, and maintain the coordinator lease."""
        wire = self.wire
        if wire.sim.partition_until is not None \
                and now >= wire.sim.partition_until:
            wire.heal(now)
            wire.flush(now)
        for replica_id in self.live():
            node = self.replicas[replica_id].node
            wire.send(replica_id, INGRESS, CH_HEARTBEAT,
                      {"replica": replica_id, "at": now,
                       "warmth": self._warmth_sample(node),
                       "incarnation": self.replicas[replica_id].restarts},
                      now, reliable=False)
            wire.c_heartbeats.inc()
        wire.flush(now)
        for replica_id in self.detector.suspects(now,
                                                 self.shardmap.members):
            if len(self.shardmap) == 1:
                break
            if self.shardmap.leave(replica_id):
                self.c_detector_leaves.inc()
                self._rebalance(now)
        for replica_id in self.live():
            if replica_id in self.shardmap:
                continue
            silence = now - self.detector.last_seen.get(replica_id, 0.0)
            if silence < self.config.wire.suspect_after:
                if self.shardmap.join(replica_id):
                    self.c_detector_joins.inc()
                    self._rebalance(now)
        if (self.injector.enabled and len(self.shardmap) > 1
                and wire.sim.partition_until is None):
            rule = self.injector.evaluate(SITE_NET_PARTITION,
                                          tick=int(now * 1000))
            if rule is not None:
                seconds = (rule.magnitude
                           or self.config.wire.partition_seconds)
                wire.partition({self.coordinator_id}, now, seconds)
        self._lease_tick(now)

    def _campaign(self, candidate: int, now: float) -> bool:
        """One election round: the candidate asks every ring member for
        a vote over the wire and wins on a member majority."""
        term = self.lease.open_term()
        members = self.shardmap.members
        quorum = len(members) // 2 + 1
        self.c_elections.inc()
        for member in members:
            self.wire.send(candidate, member, CH_VOTE,
                           {"term": term, "candidate": candidate}, now)
        self.wire.flush(now)
        if len(self.lease.tally(term, candidate)) >= quorum:
            self.lease.grant(term, candidate, now)
            self.c_leases.inc()
            return True
        return False

    def _lease_tick(self, now: float) -> None:
        holder = self.coordinator_id
        holder_ok = (self.is_up(holder)
                     and self.wire.reachable(holder, INGRESS))
        if self.lease.valid(holder, now):
            if (holder_ok and self.lease.remaining(now)
                    <= self.config.wire.lease_renew_margin):
                self._campaign(holder, now)
            # A live lease is never revoked: a partitioned holder keeps
            # authority until expiry (and halts the moment it lapses).
            return
        isolated = sorted(rid for rid in self.wire.isolated
                          if self.is_up(rid))
        if isolated:
            # The minority side campaigns first — its requests park at
            # the cut, so it can never assemble a quorum (the halt the
            # partition test asserts).
            self._campaign(isolated[0], now)
        candidates = [rid for rid in self.live()
                      if self.wire.reachable(rid, INGRESS)]
        if not candidates:
            return
        if self._campaign(candidates[0], now):
            if candidates[0] != self.coordinator_id:
                self.coordinator_id = candidates[0]
                self.c_promotions.inc()

    # -- gossip ----------------------------------------------------------

    def on_transaction(self, tx: Transaction, now: float) -> None:
        """A transaction arrived (gossip or edge accept): journal it to
        its home shard, admit it to the sharded pool, and deliver it to
        every live replica (all replicas hear all gossip — that is what
        keeps the coordinator's candidate stream single-node-identical).

        With the wire plane enabled, the pool sync and the first-sight
        gossip cross the network as framed, sequenced messages instead
        of in-process calls; a flush barrier delivers them before the
        event loop advances, so the clean-network effect order is
        byte-identical to the in-process fleet."""
        self._now = now
        first_sight = tx.hash not in self.seen
        if first_sight:
            self.seen[tx.hash] = (tx, now)
            home = self.home_of(tx)
            journal = self.replicas[home].journal
            if journal is not None:
                journal.append(RECORD_TX, _tx_payload(tx), sync=True,
                               clock={"sim_seconds": round(now, 6),
                                      "tx": tx.hash})
        if self.wire is None:
            if first_sight:
                self.shardpool.add(tx, now)
            for replica_id in self.live():
                self.replicas[replica_id].node.on_transaction(tx, now)
            return
        payload = {"tx": _tx_payload(tx), "hash": tx.hash, "heard": now}
        if first_sight:
            self.wire.send(INGRESS, self.home_of(tx), CH_POOL, payload,
                           now)
        for replica_id in self.live():
            self.wire.send(INGRESS, replica_id, CH_GOSSIP, payload, now)
        self.wire.flush(now)

    def requeue(self, tx: Transaction, now: float) -> None:
        """Reorg requeue: back through the owning shard's live queues,
        then into every replica's pending pool."""
        self.seen.setdefault(tx.hash, (tx, now))
        self.shardpool.requeue(tx, now)
        for replica_id in self.live():
            self.replicas[replica_id].node.requeue(tx, now)

    def on_reorg(self) -> None:
        for replica_id in self.live():
            self.replicas[replica_id].node.on_reorg()

    # -- speculation -----------------------------------------------------

    def run_speculation(self, now: float,
                        budget_seconds: Optional[float] = None) -> int:
        """One fleet speculation cycle = the coordinator's cycle (jobs
        land on owning replicas through the plane).

        With the wire plane enabled, admission is **lease-gated**: no
        valid coordinator lease (expired, or the holder is down) means
        no speculation this cycle — the safety half of the no-split-
        brain argument.  Speculation is pure acceleration, so a halt
        never moves commitments."""
        self._now = now
        if self.wire is not None:
            if (not self.lease.valid(self.coordinator_id, now)
                    or not self.is_up(self.coordinator_id)):
                self.c_admission_halted.inc()
                return 0
        return self.coordinator().run_speculation(now, budget_seconds)

    # -- the block pipeline ----------------------------------------------

    def process_block(self, block: Block, now: float = 0.0) -> BlockReport:
        """Import one block on every live replica.

        Journals the import per shard, snapshots each transaction's AP
        from its owning replica, executes the block on every replica
        (cross-checking that all state roots agree), and merges the
        fleet report from the owning replica of each transaction.
        """
        self._now = now
        self.block_store[block.number] = (block, now)
        clock = {"sim_seconds": round(now, 6), "number": block.number}
        for replica_id in self.live():
            journal = self.replicas[replica_id].journal
            if journal is not None:
                journal.append(RECORD_BLOCK,
                               {"number": block.number}, sync=True,
                               clock=clock)
        if self.wire is not None:
            return self._process_block_wire(block, now)
        aps: Dict[int, object] = {}
        for tx in block.transactions:
            owner = self.replicas[self.home_of(tx)].node
            ap = owner.speculator.get_ap(tx.hash)
            if ap is not None:
                aps[tx.hash] = ap
        self.block_aps = aps
        root: Optional[int] = None
        by_owner: Dict[int, Dict[int, object]] = {}
        try:
            for replica_id in self.live():
                report = self.replicas[replica_id].node.process_block(
                    block, now)
                if root is None:
                    root = report.state_root
                elif report.state_root != root:  # pragma: no cover
                    raise SimulationError(
                        f"fleet divergence at block {block.number}: "
                        f"replica {replica_id} root "
                        f"{report.state_root:#x} != {root:#x}")
                by_owner[replica_id] = {
                    record.tx_hash: record for record in report.records}
        finally:
            self.block_aps = None
        records = [by_owner[self.home_of(tx)][tx.hash]
                   for tx in block.transactions]
        return self._finish_block(block, root, records)

    def _process_block_wire(self, block: Block, now: float) -> BlockReport:
        """The block pipeline over the wire: owners ship AP snapshots
        to the ingress, the block commit fans out as framed messages
        (parked across a partition — the heal replays them at their
        carried clocks), and every root answer is cross-checked."""
        aps: Dict[int, object] = {}
        self._pending_aps = aps
        self._pending_block = block.number
        for tx in block.transactions:
            home = self.home_of(tx)
            for candidate in (home, self.coordinator_id):
                replica = self.replicas.get(candidate)
                if replica is None or replica.status != "up":
                    continue
                if not self.wire.reachable(candidate, INGRESS):
                    continue
                ap = replica.node.speculator.get_ap(tx.hash)
                if ap is None:
                    continue
                self.wire.send(candidate, INGRESS, CH_AP,
                               {"tx": tx.hash, "block": block.number},
                               now, attachment=ap)
                break
        self.wire.flush(now)
        self._pending_aps = None
        self._pending_block = None
        self.block_aps = aps
        try:
            for replica_id in self.live():
                self.wire.send(INGRESS, replica_id, CH_BLOCK,
                               {"number": block.number, "at": now}, now,
                               attachment=block)
            self.wire.flush(now)
        finally:
            self.block_aps = None
        root = self._root_history.get(block.number)
        if root is None:  # pragma: no cover
            raise SimulationError(
                f"no reachable replica executed block {block.number}")
        by_owner = {
            replica_id: {record.tx_hash: record
                         for record in report.records}
            for (number, replica_id), report in self._block_reports.items()
            if number == block.number}
        records = []
        for tx in block.transactions:
            source = by_owner.get(self.home_of(tx))
            if source is None or tx.hash not in source:
                # The owner is down or across the partition: every
                # executing replica produced an identical record —
                # merge from the lowest one.
                source = by_owner[min(by_owner)]
            records.append(source[tx.hash])
        return self._finish_block(block, root, records)

    def _finish_block(self, block: Block, root: Optional[int],
                      records: List) -> BlockReport:
        self.shardpool.remove_all(tx.hash for tx in block.transactions)
        self.c_blocks.inc()
        self.c_txs.inc(len(records))
        merged = BlockReport(block.number, root or 0, records)
        self.reports.append(merged)
        return merged

    # -- lifecycle -------------------------------------------------------

    def tick(self, now: float) -> None:
        """Lifecycle heartbeat: restart due replicas, run the wire
        plane's housekeeping (heartbeats, failure detection, partition
        roll, lease maintenance), then roll the crash dice for each
        live replica (``fleet.replica_crash``)."""
        self._now = now
        due = [entry for entry in self.pending_restarts
               if entry[0] <= now]
        self.pending_restarts = [entry for entry in self.pending_restarts
                                 if entry[0] > now]
        for _, replica_id in sorted(due):
            self.restart(replica_id, now)
        if self.wire is not None:
            self._wire_tick(now)
        if not self.injector.enabled:
            return
        for replica_id in self.live():
            if len(self.live()) == 1:
                break  # never crash the last replica
            rule = self.injector.evaluate(
                SITE_REPLICA_CRASH, replica=replica_id,
                tick=int(now * 1000))
            if rule is not None:
                self.crash(replica_id, now)

    def crash(self, replica_id: int, now: float) -> bool:
        """Kill a replica: shard map leave, pool rebalance (handoff),
        coordinator promotion if needed, restart scheduled."""
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "up" \
                or len(self.live()) == 1:
            return False
        replica.status = "down"
        replica.crashes += 1
        if replica.journal is not None:
            replica.journal.close()
            replica.journal = None
        if self.wire is None:
            self.shardmap.leave(replica_id)
            self._rebalance(now)
            if replica_id == self.coordinator_id:
                self.coordinator_id = self.live()[0]
                self.c_promotions.inc()
        else:
            # No direct membership change: the crash silences the
            # replica's heartbeats, the failure detector observes the
            # silence and drives the ring leave, and the lease protocol
            # elects a successor coordinator once the lease lapses.
            self.wire.reset_peer(replica_id)
        self.pending_restarts.append(
            (now + self.config.restart_delay, replica_id))
        self.c_crashes.inc()
        self._g_live.set(len(self.live()))
        return True

    def restart(self, replica_id: int, now: float) -> bool:
        """Rebuild a crashed replica: genesis + shard-journal replay,
        block catch-up from the chain store, pool resync from a peer.

        The replayed world must be byte-identical — every replayed
        block's ``state_root`` is validated inside ``process_block``,
        and the next fleet block cross-checks all replicas again.
        """
        replica = self.replicas.get(replica_id)
        if replica is None or replica.status != "down":
            return False
        node, registry = self._new_node()
        node.admission = self.admission
        applied = set()
        replayed_to = -1
        next_seq = 0
        if replica.journal_path is not None \
                and os.path.exists(replica.journal_path):
            truncate_torn_tail(replica.journal_path)
            scan = read_journal(replica.journal_path)
            next_seq = scan.next_seq
            for record in scan.records:
                if record.type != RECORD_BLOCK:
                    continue
                number = int(record.data["number"])
                stored = self.block_store.get(number)
                if stored is None or number <= replayed_to:
                    continue
                block, at = stored
                node.process_block(block, at)
                applied.add(number)
                replayed_to = number
        # Blocks journaled to other shards while this one was down.
        for number in sorted(self.block_store):
            if number > replayed_to:
                block, at = self.block_store[number]
                node.process_block(block, at)
                applied.add(number)
                replayed_to = number
        # Pool/heard resync from a live peer (all replicas hear all
        # gossip, so any peer's view is the canonical one; with the
        # wire plane the coordinator may itself be down mid-election,
        # so fall back to the lowest live replica).
        if self.wire is None or self.is_up(self.coordinator_id):
            peer = self.coordinator()
        else:
            peer = self.replicas[self.live()[0]].node
        node.pool = dict(peer.pool)
        node.heard = dict(peer.heard)
        node.executed = set(peer.executed)
        node._pool_version += 1
        replica.node = node
        replica.registry = registry
        replica.status = "up"
        replica.restarts += 1
        replica.applied = applied
        if replica.journal_path is not None:
            replica.journal = JournalWriter(replica.journal_path,
                                            next_seq=next_seq)
        if self.wire is None:
            self.shardmap.join(replica_id)
            self._rebalance(now)
        # With the wire plane the restarted replica rejoins the ring
        # when its first heartbeat reaches the failure detector.
        self.c_restarts.inc()
        self._g_live.set(len(self.live()))
        return True

    def _rebalance(self, now: float) -> None:
        moves, torn = self.shardpool.rebalance()
        self.c_rebalances.inc()
        if torn:
            self._repair_torn(torn, now)
        del moves  # handoffs complete; counts live in fleet.pool.*

    def _repair_torn(self, hashes: List[int], now: float) -> None:
        """Restore transactions lost to a torn handoff.

        Scans the per-shard journals (the durable admission records)
        for the missing hashes; the supervisor's gossip memory is the
        fallback for journal-less fleets.
        """
        todo = set(hashes)
        entries: Dict[int, Tuple[Transaction, float]] = {}
        if self.config.journal_dir is not None:
            for replica in self.replicas.values():
                path = replica.journal_path
                if path is None or not os.path.exists(path):
                    continue
                if replica.journal is not None:
                    replica.journal._handle.flush()
                for record in read_journal(path).records:
                    if record.type != RECORD_TX:
                        continue
                    tx = _tx_from_payload(record.data)
                    if tx.hash in todo:
                        entries[tx.hash] = (
                            tx,
                            float(record.clock.get("sim_seconds", now)))
        executed = self.coordinator().executed
        for tx_hash in sorted(todo):
            found = entries.get(tx_hash) or self.seen.get(tx_hash)
            if found is None or tx_hash in executed:
                continue
            tx, heard = found
            self.shardpool.add(tx, heard)
            self.c_torn_repaired.inc()

    def close(self) -> None:
        if self.wire is not None:
            # Final settle: heal any open partition and drain the wire
            # so no reliable message is left undelivered at shutdown.
            if self.wire.sim.isolated or self.wire.sim._parked:
                self.wire.heal(self._now)
            self.wire.flush(self._now)
        for replica in self.replicas.values():
            if replica.journal is not None:
                replica.journal.close()
                replica.journal = None

    # -- reporting -------------------------------------------------------

    def lifecycle_report(self) -> dict:
        report = {
            "replicas": {
                str(rid): {
                    "status": replica.status,
                    "crashes": replica.crashes,
                    "restarts": replica.restarts,
                }
                for rid, replica in sorted(self.replicas.items())
            },
            "coordinator": self.coordinator_id,
            "generation": self.shardmap.generation,
            "shard_sizes": {str(k): v for k, v
                            in self.shardpool.shard_sizes().items()},
        }
        if self.wire is not None:
            report["wire"] = self.wire.summary()
            report["lease"] = self.lease.summary()
            report["warmth"] = self.warmth.snapshot()
        return report
