"""Cross-shard edge routing: PR-8 edge servers fronting the fleet.

Every replica carries its own :class:`~repro.edge.server.EdgeServer`
(per-method bulkheads, token buckets, brownout ladder — aggregate
serving capacity scales with the replica count).  The router's job is
pure *placement*:

* ``eth_sendRawTransaction`` — parsed for its sender/callee and routed
  to the transaction's **home shard**; on acceptance the server's
  ``on_accept`` hook hands the transaction to the supervisor, which
  journals it to the shard and broadcasts it to every replica;
* ``eth_call`` — routed to the owner of the callee (sender when the
  call creates), whose caches and APs are warmest for that account;
* receipts / traces — routed to the owner of the transaction when the
  fleet has heard of it, else spread by hashing the lookup key onto
  the ring (every replica holds the full committed index, so any
  placement answers identically — placement is load spreading, not
  correctness);
* unparsable frames go to the coordinator, which produces the
  structured parse error.

Deadline propagation is intact: the router builds the request deadline
*before* placement, charges routing-fault penalties against it, and
passes it through — a misrouted request never gets extra time.

Fleet-level brownout: when the owner is down, or its brownout ladder
has reached ``shed`` for a read, the request fails over to the ring
successor (a full replica with identical committed state).  The
``fleet.route_flap`` and ``fleet.stale_shardmap`` chaos sites inject
misroutes and stale-generation decisions; both cost latency, never
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.edge import rpc
from repro.edge.brownout import LEVEL_SHED
from repro.edge.limits import Deadline
from repro.edge.server import EdgeConfig, EdgeServer, RequestOutcome
from repro.faults.injector import NULL_INJECTOR

from .faults import (
    ROUTE_FLAP_PENALTY_UNITS,
    SITE_ROUTE_FLAP,
    SITE_STALE_SHARDMAP,
    STALE_MAP_PENALTY_UNITS,
)
from .supervisor import FleetSupervisor

#: Methods the router may fail over to a ring successor (reads — every
#: replica serves them identically from its own full state).
READ_METHODS = ("eth_call", "eth_getTransactionReceipt",
                "debug_traceTransaction")


@dataclass
class RouteInfo:
    """Where one request actually went, and what routing cost it."""

    replica: int
    hops: int = 1
    penalty_units: int = 0
    stale: bool = False
    failover: bool = False
    #: A warmth-weighted read placement moved this request off the
    #: owner onto a warmer full replica (wire-plane fleets only).
    warmth: bool = False


class FleetRouter:
    """Deterministic request placement over the fleet's edge servers."""

    def __init__(self, supervisor: FleetSupervisor,
                 edge_config: Optional[EdgeConfig] = None,
                 injector=NULL_INJECTOR) -> None:
        self.supervisor = supervisor
        self.config = edge_config or EdgeConfig()
        self.injector = injector
        self.servers: Dict[int, EdgeServer] = {}
        self._live_snapshot = supervisor.shardmap.snapshot()
        self._stale_snapshot = None
        obs = supervisor.registry.scope("fleet.router")
        self.c_dispatched = obs.counter("dispatched")
        self.c_flaps = obs.counter("route_flaps")
        self.c_stale = obs.counter("stale_routes")
        self.c_failover = obs.counter("failovers")
        self.c_warmth = obs.counter("warmth_reroutes")

    # -- server pool -----------------------------------------------------

    def server_for(self, replica_id: int) -> EdgeServer:
        """The replica's edge server (rebound after a restart: a fresh
        node object means fresh serving indexes, rebuilt lazily from
        the replayed reports)."""
        replica = self.supervisor.replicas[replica_id]
        server = self.servers.get(replica_id)
        if server is None or server.node is not replica.node:
            server = EdgeServer(replica.node, self.config,
                                registry=replica.registry)
            server.on_accept = self._on_accept
            self.servers[replica_id] = server
        return server

    def _on_accept(self, tx: Transaction, now: float) -> None:
        self.supervisor.on_transaction(tx, now)

    def on_block(self, block, report) -> None:
        """A block committed fleet-wide: refresh every live server."""
        for replica_id in self.supervisor.live():
            self.server_for(replica_id).on_block(block, report)

    # -- placement -------------------------------------------------------

    def _routing_key(self, raw: str) -> Optional[Tuple[str, int,
                                                       Optional[int]]]:
        """``(kind, key, key2)`` for one frame, or ``None`` when the
        frame cannot be routed by content (the coordinator serves it)."""
        try:
            request = rpc.parse_request(raw)
        except rpc.RpcError:
            return None
        method, params = request.method, request.params
        try:
            if method == "eth_sendRawTransaction":
                if len(params) != 1 or not isinstance(params[0], dict):
                    return None
                call = params[0]
                sender = _loose_int(call.get("from"))
                to = _loose_int(call.get("to"))
                if sender is None:
                    return None
                return ("home", sender, to)
            if method == "eth_call":
                if len(params) != 1 or not isinstance(params[0], dict):
                    return None
                call = params[0]
                key = _loose_int(call.get("to"))
                if key is None:
                    key = _loose_int(call.get("from"))
                if key is None:
                    return None
                return ("owner", key, None)
            if method in ("eth_getTransactionReceipt",
                          "debug_traceTransaction"):
                if len(params) != 1 or not isinstance(params[0], str):
                    return None
                return ("tx", int(params[0], 16), None)
        except (ValueError, TypeError):
            return None
        return None

    def _resolve(self, key) -> Tuple[int, str]:
        """Live-map placement for a routing key; returns
        ``(replica_id, method_kind)``."""
        supervisor = self.supervisor
        if key is None:
            return supervisor.coordinator_id, "other"
        kind, primary, secondary = key
        shardmap = supervisor.shardmap
        if kind == "home":
            return shardmap.home_shard(primary, secondary), "send"
        if kind == "tx":
            seen = supervisor.seen.get(primary)
            if seen is not None:
                return supervisor.home_of(seen[0]), "read"
            return shardmap.owner(primary), "read"
        return shardmap.owner(primary), "read"

    def dispatch(self, raw: str, client_id: int, now: float,
                 weight: float = 1.0,
                 deadline_units: Optional[int] = None,
                 deadline: Optional[Deadline] = None,
                 attempt: int = 1
                 ) -> Tuple[dict, RequestOutcome, RouteInfo]:
        """Place and serve one frame; returns
        ``(response, outcome, route)``."""
        supervisor = self.supervisor
        if supervisor.shardmap.generation != self._live_snapshot.generation:
            self._stale_snapshot = self._live_snapshot
            self._live_snapshot = supervisor.shardmap.snapshot()
        key = self._routing_key(raw)
        target, kind = self._resolve(key)
        info = RouteInfo(replica=target)
        # Chaos: the router serves one decision from the previous
        # shard-map generation.  Any replica answers reads correctly
        # and accepted sends are broadcast, so a stale placement costs
        # one forwarding hop of latency, never correctness.
        if (key is not None and self._stale_snapshot is not None
                and self.injector.evaluate(
                    SITE_STALE_SHARDMAP, client=client_id) is not None):
            stale_target = self._stale_snapshot.owner(key[1])
            if stale_target != target and supervisor.is_up(stale_target):
                info.stale = True
                info.hops += 1
                info.penalty_units += STALE_MAP_PENALTY_UNITS
                target = stale_target
                self.c_stale.inc()
        # Chaos: a route flap bounces the request off the wrong replica
        # before the misroute is detected and it lands on the owner.
        if self.injector.evaluate(SITE_ROUTE_FLAP,
                                  client=client_id) is not None:
            wrong = supervisor.shardmap.successor(target)
            if wrong is not None:
                info.hops += 1
                info.penalty_units += ROUTE_FLAP_PENALTY_UNITS
                self.c_flaps.inc()
        # Fleet brownout: down owner, or a shedding owner for a read,
        # fails over to the ring successor.
        if not supervisor.is_up(target):
            successor = supervisor.shardmap.successor(target)
            if successor is None:
                successor = supervisor.live()[0]
            target = successor
            info.failover = True
            self.c_failover.inc()
        elif kind == "read":
            server = self.server_for(target)
            if server.brownout.level >= LEVEL_SHED:
                successor = supervisor.shardmap.successor(target)
                if successor is not None and \
                        self.server_for(successor).brownout.level \
                        < LEVEL_SHED:
                    target = successor
                    info.failover = True
                    self.c_failover.inc()
            elif supervisor.warmth is not None:
                # Warmth-weighted read placement (wire fleets): every
                # replica holds the full committed state, so a read may
                # go to whichever of {owner, ring successor} published
                # the higher cache-warmth EWMA over heartbeats, with
                # ties broken by the lower replica id.  The choice is a
                # pure function of the deterministic heartbeat history.
                warmer = self._warmth_read_target(target)
                if warmer != target:
                    target = warmer
                    info.warmth = True
                    self.c_warmth.inc()
        info.replica = target
        # Deadline built before placement: penalties eat into the
        # budget, a misroute never buys more time.
        if deadline is None:
            budget = deadline_units or self.config.default_deadline_units
            budget = max(1, budget - info.penalty_units)
            deadline = Deadline.from_budget(now, budget,
                                            self.config.service_rate)
        server = self.server_for(target)
        response, outcome = server.handle_raw(
            raw, client_id, now, weight=weight, deadline=deadline,
            attempt=attempt)
        if info.penalty_units:
            outcome.latency_units += info.penalty_units
        self.c_dispatched.inc()
        return response, outcome, info

    def _warmth_read_target(self, owner: int) -> int:
        """The warmth-weighted placement for a read owned by
        ``owner``: the warmer of the owner and its ring successor,
        skipping down or shedding replicas; equal warmth breaks to the
        lower replica id; no eligible candidate keeps the owner."""
        supervisor = self.supervisor
        candidates = [owner]
        successor = supervisor.shardmap.successor(owner)
        if successor is not None and successor != owner:
            candidates.append(successor)
        eligible = [
            rid for rid in candidates
            if supervisor.is_up(rid)
            and self.server_for(rid).brownout.level < LEVEL_SHED]
        if not eligible:
            return owner
        warmth = supervisor.warmth
        return min(eligible, key=lambda rid: (-warmth.warmth(rid), rid))

    # -- reporting -------------------------------------------------------

    def summary(self) -> dict:
        return {
            "dispatched": self.c_dispatched.value,
            "route_flaps": self.c_flaps.value,
            "stale_routes": self.c_stale.value,
            "failovers": self.c_failover.value,
            "warmth_reroutes": self.c_warmth.value,
            "per_replica": {
                str(replica_id): server.summary()
                for replica_id, server in sorted(self.servers.items())
            },
        }


def _loose_int(value) -> Optional[int]:
    """Best-effort field parse for routing only (the target server's
    strict parser is the authority on validity)."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, int):
        return value if value >= 0 else None
    if isinstance(value, str):
        try:
            parsed = int(value, 16)
        except ValueError:
            return None
        return parsed if parsed >= 0 else None
    return None
