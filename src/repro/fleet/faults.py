"""Fleet fault sites for the chaos framework.

Four sites cover the multi-replica runtime's failure surface:

========================= ===============================================
``fleet.replica_crash``    a replica crashes mid-run; the supervisor
                           restarts it from genesis + its shard journal,
                           which must replay to byte-identical state
``fleet.handoff_torn``     a rebalance handoff is interrupted after the
                           source shard withdrew the transaction but
                           before the target accepted it; journal repair
                           must restore it
``fleet.route_flap``       the router briefly routes a request to the
                           wrong replica; the misroute is detected and
                           the request re-dispatched to the owner
``fleet.stale_shardmap``   the router serves one decision from a
                           previous shard-map generation; the stale
                           owner forwards (one extra hop), never drops
========================= ===============================================

Like the ``edge.*`` and ``recovery.*`` sites, these are *not* part of
:data:`repro.faults.injector.SITES`: generic pipeline plans never
evaluate them.  A fleet plan is built here and driven through a fleet
serving scenario (``repro chaos --fleet`` and the per-site sweep in
``tests/test_fleet_chaos.py``).

Containment contract: a fleet fault may slow a request (extra hop,
re-dispatch) or cost a replica its warm speculation state (a crash
loses APs — acceleration only), but committed state, receipts, and
Merkle roots stay byte-identical to the fault-free fleet run, which is
itself byte-identical to the single-node serial run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults.injector import (
    KIND_CRASH,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_REORDER,
    KIND_TORN,
    FaultPlan,
    FaultRule,
)

SITE_REPLICA_CRASH = "fleet.replica_crash"
SITE_HANDOFF_TORN = "fleet.handoff_torn"
SITE_ROUTE_FLAP = "fleet.route_flap"
SITE_STALE_SHARDMAP = "fleet.stale_shardmap"

FLEET_SITE_KINDS: Dict[str, str] = {
    SITE_REPLICA_CRASH: KIND_CRASH,
    SITE_HANDOFF_TORN: KIND_TORN,
    SITE_ROUTE_FLAP: KIND_REORDER,
    SITE_STALE_SHARDMAP: KIND_DROP,
}

FLEET_SITES: Tuple[str, ...] = tuple(FLEET_SITE_KINDS)

# -- wire-plane (network) sites -------------------------------------------
#
# The ``net.*`` sites fire on the deterministic wire plane
# (:mod:`repro.fleet.wire`): every framed message between replicas —
# gossip, pool sync, speculation dispatch, AP snapshots, block commits,
# heartbeats, lease votes — is one evaluation.  Containment contract:
# at-least-once retry with escalation plus receiver-side sequence
# windows turn any drop/duplicate/reorder/delay interleaving into an
# exactly-once, order-preserving effect stream, and a partition parks
# traffic until heal — commitments never change.

SITE_NET_DROP = "net.drop"
SITE_NET_DUPLICATE = "net.duplicate"
SITE_NET_REORDER = "net.reorder"
SITE_NET_DELAY = "net.delay"
SITE_NET_PARTITION = "net.partition"

NET_SITE_KINDS: Dict[str, str] = {
    SITE_NET_DROP: KIND_DROP,
    SITE_NET_DUPLICATE: KIND_DUPLICATE,
    SITE_NET_REORDER: KIND_REORDER,
    SITE_NET_DELAY: KIND_REORDER,
    SITE_NET_PARTITION: KIND_CRASH,
}

NET_SITES: Tuple[str, ...] = tuple(NET_SITE_KINDS)

#: Cost units a misrouted request pays before re-dispatch (one wasted
#: hop to the wrong replica and back).
ROUTE_FLAP_PENALTY_UNITS = 2_000
#: Cost units a stale-map decision pays (the stale owner forwards).
STALE_MAP_PENALTY_UNITS = 1_000


def fleet_fault_plan(seed: int, probability: float,
                     sites: Optional[Tuple[str, ...]] = None) -> FaultPlan:
    """A uniform plan over the fleet sites (kind-appropriate rules)."""
    chosen = sites if sites is not None else FLEET_SITES
    rules = tuple(
        FaultRule(site=site, kind=FLEET_SITE_KINDS[site],
                  probability=probability)
        for site in chosen)
    return FaultPlan(seed=seed, rules=rules)


def net_fault_plan(seed: int, probability: float,
                   sites: Optional[Tuple[str, ...]] = None,
                   magnitude: float = 0.0) -> FaultPlan:
    """A uniform plan over the wire-plane ``net.*`` sites.

    ``magnitude`` is simulated seconds for ``net.delay`` /
    ``net.reorder`` and partition duration for ``net.partition``
    (0 selects each site's default).
    """
    chosen = sites if sites is not None else NET_SITES
    rules = tuple(
        FaultRule(site=site, kind=NET_SITE_KINDS[site],
                  probability=probability, magnitude=magnitude)
        for site in chosen)
    return FaultPlan(seed=seed, rules=rules)
