"""Sharded, nonce-aware transaction pool.

One :class:`repro.txpool.pool.TxPool` per fleet shard, fronted by a
router that sends every transaction to its deterministic *home shard*:

* a plain transfer or single-contract call lives with the owner of the
  accounts it touches (``ShardMap.owner``);
* a **cross-shard entangled** transaction — sender owned by one shard,
  callee by another — is escalated to the involved shard with the
  lowest ring position (``ShardMap.home_shard``), a total order every
  router computes independently;
* a **reorg requeue** is routed through the *current* owning shard's
  live queues, even when a stale shard-map generation admitted the
  transaction somewhere else (the stale copy is withdrawn first).

The overlay keeps a fleet-level ``(sender, nonce) -> shard`` index so
nonce runs that straddle shards still come back in strict nonce order
(:meth:`ready_for`).  On membership change, :meth:`rebalance` computes
the exact handoff set (consistent hashing keeps it ~1/N of pending)
and moves those transactions, preserving arrival times; a torn
handoff (``fleet.handoff_torn``) leaves the move half-done, which the
supervisor repairs from the shard journal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.consensus.packing import priority_key
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.obs.registry import MetricsRegistry, get_registry
from repro.txpool.pool import TxPool

from .shardmap import ShardMap


class ShardedTxPool:
    """Consistent-hash sharded pool overlay over per-shard nonce queues."""

    def __init__(self, shardmap: ShardMap,
                 registry: Optional[MetricsRegistry] = None,
                 injector: FaultInjector = NULL_INJECTOR) -> None:
        self.shardmap = shardmap
        self.registry = registry or get_registry()
        self.injector = injector
        self.pools: Dict[int, TxPool] = {}
        #: tx_hash -> shard currently holding it.
        self._home: Dict[int, int] = {}
        #: sender -> nonce -> tx (fleet-wide nonce index; nonce runs
        #: can straddle shards when some txs are entangled).
        self._index: Dict[int, Dict[int, Transaction]] = {}
        #: tx_hash -> shard-map generation that admitted it.
        self.admit_generation: Dict[int, int] = {}
        obs = self.registry.scope("fleet.pool")
        self.c_routed = obs.counter("routed")
        self.c_entangled = obs.counter("entangled")
        self.c_requeued = obs.counter("requeued")
        self.c_moved = obs.counter("handoff_moved")
        self.c_torn = obs.counter("handoff_torn")
        self._g_size = obs.gauge("size")
        for replica_id in shardmap.members:
            self._ensure_shard(replica_id)

    # -- shard lifecycle -------------------------------------------------

    def _ensure_shard(self, replica_id: int) -> TxPool:
        pool = self.pools.get(replica_id)
        if pool is None:
            pool = TxPool(registry=self.registry)
            self.pools[replica_id] = pool
        return pool

    def shard_of(self, tx: Transaction) -> int:
        """Deterministic home shard of a transaction (escalates
        entangled transactions to the lowest ring position)."""
        return self.shardmap.home_shard(tx.sender, tx.to)

    def is_entangled(self, tx: Transaction) -> bool:
        """True when sender and callee are owned by different shards."""
        if tx.to is None:
            return False
        return (self.shardmap.owner(tx.sender)
                != self.shardmap.owner(tx.to))

    # -- pool interface ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._home)

    def __contains__(self, tx_hash: int) -> bool:
        return tx_hash in self._home

    def add(self, tx: Transaction, now: float = 0.0) -> bool:
        """Route ``tx`` to its home shard's nonce queue."""
        shard = self.shard_of(tx)
        pool = self._ensure_shard(shard)
        # Replace-by-fee may evict a same-nonce predecessor that lives
        # in a *different* shard (admitted under an older generation).
        stale = self._index.get(tx.sender, {}).get(tx.nonce)
        if stale is not None and self._home.get(stale.hash) != shard:
            if tx.gas_price <= stale.gas_price:
                pool.c_rejected.inc()
                return False
            self.remove(stale.hash)
        if not pool.add(tx, now):
            return False
        self._home[tx.hash] = shard
        self._index.setdefault(tx.sender, {})[tx.nonce] = tx
        self.admit_generation[tx.hash] = self.shardmap.generation
        self.c_routed.inc()
        if self.is_entangled(tx):
            self.c_entangled.inc()
        self._g_size.set(len(self._home))
        return True

    def requeue(self, tx: Transaction, now: float = 0.0) -> bool:
        """Return a reorged-out transaction through its *owning* shard.

        The owner is recomputed against the live shard map: if the
        transaction was admitted under an older generation (or a stale
        copy is still parked in another shard), the stale copy is
        withdrawn and the requeue lands in the current owner's live
        queue — never in the queue of a shard that no longer owns it.
        """
        shard = self.shard_of(tx)
        previous = self._home.get(tx.hash)
        if previous is not None and previous != shard:
            self.remove(tx.hash)
        pool = self._ensure_shard(shard)
        arrival = pool.arrival_times.get(tx.hash, now)
        if not pool.requeue(tx, arrival):
            return False
        self._home[tx.hash] = shard
        self._index.setdefault(tx.sender, {})[tx.nonce] = tx
        self.admit_generation[tx.hash] = self.shardmap.generation
        self.c_requeued.inc()
        self._g_size.set(len(self._home))
        return True

    def remove(self, tx_hash: int) -> Optional[Transaction]:
        shard = self._home.pop(tx_hash, None)
        if shard is None:
            return None
        self.admit_generation.pop(tx_hash, None)
        tx = self.pools[shard].remove(tx_hash)
        if tx is not None:
            sender_index = self._index.get(tx.sender)
            if sender_index and sender_index.get(tx.nonce) is tx:
                del sender_index[tx.nonce]
                if not sender_index:
                    del self._index[tx.sender]
        self._g_size.set(len(self._home))
        return tx

    def remove_all(self, tx_hashes: Iterable[int]) -> int:
        removed = 0
        for tx_hash in tx_hashes:
            if self.remove(tx_hash) is not None:
                removed += 1
        return removed

    def pending(self) -> List[Transaction]:
        """All pending transactions across shards (shard-id order)."""
        out: List[Transaction] = []
        for replica_id in sorted(self.pools):
            out.extend(self.pools[replica_id].pending())
        return out

    def pending_in(self, replica_id: int) -> List[Transaction]:
        pool = self.pools.get(replica_id)
        return pool.pending() if pool is not None else []

    def price_sorted(self) -> List[Transaction]:
        """Fleet-wide fee-priority view.

        Ties break on transaction hash (not a random draw as in the
        single-shard :meth:`TxPool.price_sorted`) so the merged view is
        identical no matter how pending is distributed across shards.
        """
        return sorted(self.pending(),
                      key=lambda tx: priority_key(tx, None) + (tx.hash,))

    def ready_for(self, sender: int, next_nonce: int
                  ) -> List[Transaction]:
        """Sender's consecutive-nonce run, merged across shards.

        A run may straddle shards when some of the sender's txs are
        entangled; the fleet index stitches the per-shard queues back
        into one strict nonce order.
        """
        queue = self._index.get(sender, {})
        ready: List[Transaction] = []
        nonce = next_nonce
        while nonce in queue:
            ready.append(queue[nonce])
            nonce += 1
        return ready

    # -- rebalance --------------------------------------------------------

    def rebalance(self) -> Tuple[List[Tuple[int, int, int]],
                                 List[int]]:
        """Move pending transactions whose home shard changed.

        Called by the supervisor after a membership change.  Returns
        ``(moves, torn)``: ``moves`` is a list of
        ``(tx_hash, source_shard, target_shard)`` completed handoffs,
        ``torn`` the hashes whose handoff was interrupted by a
        ``fleet.handoff_torn`` fault — withdrawn from the source but
        never delivered, awaiting journal repair.
        """
        moves: List[Tuple[int, int, int]] = []
        torn: List[int] = []
        # Deterministic scan order: shard id, then tx hash.
        planned: List[Tuple[int, int, Transaction]] = []
        for replica_id in sorted(self.pools):
            for tx in sorted(self.pools[replica_id].pending(),
                             key=lambda tx: tx.hash):
                target = self.shard_of(tx)
                if target != replica_id:
                    planned.append((replica_id, target, tx))
        for source, target, tx in planned:
            arrival = self.pools[source].arrival_times.get(tx.hash, 0.0)
            self.remove(tx.hash)
            fault = self.injector.evaluate(
                "fleet.handoff_torn", tx_hash=tx.hash,
                source=source, target=target)
            if fault is not None:
                self.c_torn.inc()
                torn.append(tx.hash)
                continue
            self._ensure_shard(target).add(tx, arrival)
            self._home[tx.hash] = target
            self._index.setdefault(tx.sender, {})[tx.nonce] = tx
            self.admit_generation[tx.hash] = self.shardmap.generation
            self.c_moved.inc()
            moves.append((tx.hash, source, target))
        self._g_size.set(len(self._home))
        return moves, torn

    def shard_sizes(self) -> Dict[int, int]:
        return {replica_id: len(pool)
                for replica_id, pool in sorted(self.pools.items())}
