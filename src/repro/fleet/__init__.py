"""repro.fleet — deterministic multi-replica runtime.

N node replicas under one simulated cost-unit event loop: a
consistent-hash shard map (:mod:`repro.fleet.shardmap`), a sharded
nonce-aware txpool (:mod:`repro.fleet.shardpool`), a replica lifecycle
supervisor with per-shard recovery journals
(:mod:`repro.fleet.supervisor`), cross-shard edge routing
(:mod:`repro.fleet.router`), the replay/serving loops
(:mod:`repro.fleet.serve`), and the deterministic wire plane
(:mod:`repro.fleet.wire`): canonical-JSON framed, sequence-numbered
inter-replica messaging through a seeded hostile-network simulator,
with heartbeat failure detection and lease-based coordinator election
(:mod:`repro.fleet.lease`).  Fleet commitments are byte-identical to
the single-node serial run at every shard count, wire on or off —
docs/FLEET.md has the determinism argument.
"""

from .faults import (
    FLEET_SITE_KINDS,
    FLEET_SITES,
    NET_SITE_KINDS,
    NET_SITES,
    SITE_HANDOFF_TORN,
    SITE_NET_DELAY,
    SITE_NET_DROP,
    SITE_NET_DUPLICATE,
    SITE_NET_PARTITION,
    SITE_NET_REORDER,
    SITE_REPLICA_CRASH,
    SITE_ROUTE_FLAP,
    SITE_STALE_SHARDMAP,
    fleet_fault_plan,
    net_fault_plan,
)
from .lease import Lease, LeaseRegistry
from .router import FleetRouter, RouteInfo
from .serve import (
    NET_PROFILES,
    FleetRun,
    FleetServingResult,
    fleet_replay,
    net_profile_config,
    run_fleet_serving,
    send_storm_scenario,
)
from .shardmap import ShardMap, ShardMapSnapshot
from .shardpool import ShardedTxPool
from .supervisor import FleetConfig, FleetSupervisor
from .wire import (
    INGRESS,
    Envelope,
    FailureDetector,
    NetworkSim,
    WarmthTracker,
    WireConfig,
    WirePlane,
)

__all__ = [
    "Envelope",
    "FailureDetector",
    "FLEET_SITES",
    "FLEET_SITE_KINDS",
    "FleetConfig",
    "FleetRouter",
    "FleetRun",
    "FleetServingResult",
    "FleetSupervisor",
    "INGRESS",
    "Lease",
    "LeaseRegistry",
    "NET_PROFILES",
    "NET_SITES",
    "NET_SITE_KINDS",
    "NetworkSim",
    "RouteInfo",
    "ShardMap",
    "ShardMapSnapshot",
    "ShardedTxPool",
    "SITE_HANDOFF_TORN",
    "SITE_NET_DELAY",
    "SITE_NET_DROP",
    "SITE_NET_DUPLICATE",
    "SITE_NET_PARTITION",
    "SITE_NET_REORDER",
    "SITE_REPLICA_CRASH",
    "SITE_ROUTE_FLAP",
    "SITE_STALE_SHARDMAP",
    "WarmthTracker",
    "WireConfig",
    "WirePlane",
    "fleet_fault_plan",
    "fleet_replay",
    "net_fault_plan",
    "net_profile_config",
    "run_fleet_serving",
    "send_storm_scenario",
]
