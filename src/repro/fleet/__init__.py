"""repro.fleet — deterministic multi-replica runtime.

N node replicas under one simulated cost-unit event loop: a
consistent-hash shard map (:mod:`repro.fleet.shardmap`), a sharded
nonce-aware txpool (:mod:`repro.fleet.shardpool`), a replica lifecycle
supervisor with per-shard recovery journals
(:mod:`repro.fleet.supervisor`), cross-shard edge routing
(:mod:`repro.fleet.router`), and the replay/serving loops
(:mod:`repro.fleet.serve`).  Fleet commitments are byte-identical to
the single-node serial run at every shard count — docs/FLEET.md has
the determinism argument.
"""

from .faults import (
    FLEET_SITE_KINDS,
    FLEET_SITES,
    SITE_HANDOFF_TORN,
    SITE_REPLICA_CRASH,
    SITE_ROUTE_FLAP,
    SITE_STALE_SHARDMAP,
    fleet_fault_plan,
)
from .router import FleetRouter, RouteInfo
from .serve import (
    FleetRun,
    FleetServingResult,
    fleet_replay,
    run_fleet_serving,
    send_storm_scenario,
)
from .shardmap import ShardMap, ShardMapSnapshot
from .shardpool import ShardedTxPool
from .supervisor import FleetConfig, FleetSupervisor

__all__ = [
    "FLEET_SITES",
    "FLEET_SITE_KINDS",
    "FleetConfig",
    "FleetRouter",
    "FleetRun",
    "FleetServingResult",
    "FleetSupervisor",
    "RouteInfo",
    "ShardMap",
    "ShardMapSnapshot",
    "ShardedTxPool",
    "SITE_HANDOFF_TORN",
    "SITE_REPLICA_CRASH",
    "SITE_ROUTE_FLAP",
    "SITE_STALE_SHARDMAP",
    "fleet_fault_plan",
    "fleet_replay",
    "run_fleet_serving",
    "send_storm_scenario",
]
