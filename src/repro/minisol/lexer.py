"""minisol lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = {
    "contract", "function", "mapping", "uint256", "address", "bool",
    "public", "private", "view", "returns", "if", "else", "while",
    "for", "require", "revert", "return", "emit", "event", "true",
    "false", "indexed",
}

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "+=", "-=", "*=", "/=", "%=",
    "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str       # "ident" | "number" | "string" | keyword | operator
    text: str
    line: int

    @property
    def value(self) -> int:
        """Numeric value (valid only for number tokens)."""
        return int(self.text, 0)


def tokenize(source: str) -> List[Token]:
    """Tokenize minisol ``source``; raises :class:`CompileError` on junk."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end < 0:
                raise CompileError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i + 1
            if ch == "0" and j < n and source[j] in "xX":
                j += 1
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and (source[j].isdigit() or source[j] == "_"):
                    j += 1
            yield Token("number", source[i:j].replace("_", ""), line)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = word if word in KEYWORDS else "ident"
            yield Token(kind, word, line)
            i = j
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0:
                raise CompileError("unterminated string", line)
            yield Token("string", source[i + 1:end], line)
            i = end + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token(op, op, line)
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
