"""minisol recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CompileError
from repro.minisol import ast_nodes as ast
from repro.minisol.lexer import Token, tokenize

#: Builtin pseudo-functions usable in expressions.
BUILTINS = {"extcall", "staticread", "delegate", "balance", "blockhash",
            "keccak"}

#: Environment dotted reads.
ENV_FIELDS = {
    "msg.sender", "msg.value",
    "block.timestamp", "block.number", "block.coinbase",
    "block.difficulty", "block.gaslimit",
    "tx.origin", "tx.gasprice",
}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Parses one ``contract`` declaration."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Optional[Token]:
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise CompileError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise CompileError(
                f"expected {kind!r}, found {token.text!r}", token.line)
        return token

    def _accept(self, kind: str) -> Optional[Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.pos += 1
            return token
        return None

    # -- declarations ----------------------------------------------------------

    def parse_contract(self) -> ast.Contract:
        self._expect("contract")
        name = self._expect("ident").text
        self._expect("{")
        contract = ast.Contract(name=name)
        next_slot = 0
        while not self._accept("}"):
            token = self._peek()
            if token is None:
                raise CompileError("unterminated contract body")
            if token.kind == "function":
                contract.functions.append(self._parse_function())
            elif token.kind == "event":
                contract.events.append(self._parse_event())
            else:
                var = self._parse_state_var(next_slot)
                contract.state_vars.append(var)
                next_slot += 1
        return contract

    def _parse_type(self):
        token = self._next()
        if token.kind in ("uint256", "address", "bool"):
            return ast.ScalarType(token.kind)
        if token.kind == "mapping":
            self._expect("(")
            key = self._parse_type()
            if not isinstance(key, ast.ScalarType):
                raise CompileError("mapping key must be scalar", token.line)
            self._expect("=>")
            value = self._parse_type()
            self._expect(")")
            return ast.MappingType(key, value)
        raise CompileError(f"expected type, found {token.text!r}", token.line)

    def _parse_state_var(self, slot: int) -> ast.StateVar:
        var_type = self._parse_type()
        public = bool(self._accept("public"))
        self._accept("private")
        name = self._expect("ident").text
        self._expect(";")
        return ast.StateVar(name=name, type=var_type, slot=slot, public=public)

    def _parse_event(self) -> ast.EventDecl:
        self._expect("event")
        name = self._expect("ident").text
        self._expect("(")
        params = self._parse_params(allow_indexed=True)
        self._expect(")")
        self._expect(";")
        return ast.EventDecl(name=name, params=params)

    def _parse_params(self, allow_indexed: bool = False
                      ) -> List[Tuple[str, str]]:
        params: List[Tuple[str, str]] = []
        if self._peek() is not None and self._peek().kind == ")":
            return params
        while True:
            type_token = self._next()
            if type_token.kind not in ("uint256", "address", "bool"):
                raise CompileError(
                    f"expected parameter type, found {type_token.text!r}",
                    type_token.line)
            if allow_indexed:
                self._accept("indexed")
            name = self._expect("ident").text
            params.append((type_token.kind, name))
            if not self._accept(","):
                return params

    def _parse_function(self) -> ast.Function:
        self._expect("function")
        name = self._expect("ident").text
        self._expect("(")
        params = self._parse_params()
        self._expect(")")
        self._accept("public")
        private = bool(self._accept("private"))
        view = bool(self._accept("view"))
        returns_value = False
        if self._accept("returns"):
            self._expect("(")
            ret = self._next()
            if ret.kind not in ("uint256", "address", "bool"):
                raise CompileError("unsupported return type", ret.line)
            self._accept("ident")  # optional named return
            self._expect(")")
            returns_value = True
        body = self._parse_block()
        return ast.Function(name=name, params=params,
                            returns_value=returns_value, body=body,
                            view=view, private=private)

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> List[object]:
        self._expect("{")
        body: List[object] = []
        while not self._accept("}"):
            body.append(self._parse_statement())
        return body

    def _parse_statement(self):
        token = self._peek()
        if token is None:
            raise CompileError("unexpected end of input in statement")
        line = token.line
        if token.kind in ("uint256", "address", "bool"):
            self._next()
            name = self._expect("ident").text
            init = None
            if self._accept("="):
                init = self._parse_expression()
            self._expect(";")
            return ast.VarDecl(token.kind, name, init, line)
        if token.kind == "if":
            self._next()
            self._expect("(")
            condition = self._parse_expression()
            self._expect(")")
            then_body = self._parse_block()
            else_body: List[object] = []
            if self._accept("else"):
                if self._peek() is not None and self._peek().kind == "if":
                    else_body = [self._parse_statement()]
                else:
                    else_body = self._parse_block()
            return ast.If(condition, then_body, else_body, line)
        if token.kind == "while":
            self._next()
            self._expect("(")
            condition = self._parse_expression()
            self._expect(")")
            body = self._parse_block()
            return ast.While(condition, body, line)
        if token.kind == "for":
            self._next()
            self._expect("(")
            init = None
            if self._peek() is not None and self._peek().kind != ";":
                init = self._parse_simple_statement()
            self._expect(";")
            condition = self._parse_expression()
            self._expect(";")
            post = None
            if self._peek() is not None and self._peek().kind != ")":
                post = self._parse_simple_statement()
            self._expect(")")
            body = self._parse_block()
            return ast.For(init, condition, post, body, line)
        if token.kind == "require":
            self._next()
            self._expect("(")
            condition = self._parse_expression()
            self._accept(",") and self._accept("string")
            self._expect(")")
            self._expect(";")
            return ast.Require(condition, line)
        if token.kind == "revert":
            self._next()
            self._expect("(")
            self._accept("string")
            self._expect(")")
            self._expect(";")
            return ast.RevertStmt(line)
        if token.kind == "return":
            self._next()
            value = None
            if self._peek() is not None and self._peek().kind != ";":
                value = self._parse_expression()
            self._expect(";")
            return ast.Return(value, line)
        if token.kind == "emit":
            self._next()
            event = self._expect("ident").text
            self._expect("(")
            args = self._parse_args()
            self._expect(")")
            self._expect(";")
            return ast.Emit(event, args, line)
        statement = self._parse_simple_statement()
        self._expect(";")
        return statement

    def _parse_simple_statement(self):
        """Declaration / (compound) assignment / expression, without
        the trailing semicolon (shared with ``for`` headers)."""
        token = self._peek()
        line = token.line if token is not None else 0
        if token is not None and token.kind in ("uint256", "address",
                                                "bool"):
            self._next()
            name = self._expect("ident").text
            init = None
            if self._accept("="):
                init = self._parse_expression()
            return ast.VarDecl(token.kind, name, init, line)
        expr = self._parse_expression()
        if self._accept("="):
            value = self._parse_expression()
            if not isinstance(expr, (ast.Name, ast.MappingAccess)):
                raise CompileError("invalid assignment target", line)
            return ast.Assign(expr, value, line)
        for compound in ("+=", "-=", "*=", "/=", "%="):
            if self._accept(compound):
                value = self._parse_expression()
                if not isinstance(expr, (ast.Name, ast.MappingAccess)):
                    raise CompileError("invalid assignment target", line)
                # Desugar: x op= e  ->  x = x op e.
                return ast.Assign(
                    expr, ast.Binary(compound[0], expr, value, line),
                    line)
        return ast.ExprStmt(expr, line)

    def _parse_args(self) -> List[object]:
        args: List[object] = []
        if self._peek() is not None and self._peek().kind == ")":
            return args
        while True:
            args.append(self._parse_expression())
            if not self._accept(","):
                return args

    # -- expressions (precedence climbing) ----------------------------------------

    def _parse_expression(self, min_precedence: int = 1):
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is None:
                return left
            precedence = _PRECEDENCE.get(token.kind)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._parse_expression(precedence + 1)
            left = ast.Binary(token.kind, left, right, token.line)

    def _parse_unary(self):
        token = self._peek()
        if token is not None and token.kind in ("!", "-"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(token.kind, operand, token.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "[":
                if not isinstance(expr, (ast.Name, ast.MappingAccess)):
                    raise CompileError("cannot index this expression",
                                       token.line)
                self._next()
                key = self._parse_expression()
                self._expect("]")
                if isinstance(expr, ast.Name):
                    expr = ast.MappingAccess(expr.ident, [key], token.line)
                else:
                    expr.keys.append(key)
                continue
            return expr

    def _parse_primary(self):
        token = self._next()
        if token.kind == "number":
            return ast.Literal(token.value, token.line)
        if token.kind == "true":
            return ast.Literal(1, token.line)
        if token.kind == "false":
            return ast.Literal(0, token.line)
        if token.kind == "(":
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.kind in ("ident", "msg", "block", "tx"):
            name = token.text
            # Dotted environment reads: msg.sender etc.
            if self._peek() is not None and self._peek().kind == ".":
                self._next()
                field = self._expect("ident").text
                path = f"{name}.{field}"
                if path not in ENV_FIELDS:
                    raise CompileError(f"unknown field {path!r}", token.line)
                return ast.EnvRead(path, token.line)
            # Builtin or internal function calls.
            if self._peek() is not None and self._peek().kind == "(":
                self._next()
                args = self._parse_args()
                self._expect(")")
                if name in BUILTINS:
                    return ast.Call(name, args, token.line)
                return ast.InternalCall(name, args, token.line)
            return ast.Name(name, token.line)
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.Contract:
    """Parse minisol source into a :class:`Contract` AST."""
    return Parser(tokenize(source)).parse_contract()
