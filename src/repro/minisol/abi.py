"""Calldata ABI encoding and storage-slot derivation.

Matches the conventions the codegen emits: 4-byte selectors from the
keccak of the canonical signature, 32-byte big-endian arguments, and
mapping slots derived as ``keccak(key32 || base_slot32)`` exactly like
Solidity's storage layout.
"""

from __future__ import annotations

from typing import Iterable

from repro.utils.hashing import keccak, keccak_int
from repro.utils.words import bytes_to_int, int_to_bytes32


def selector(signature: str) -> int:
    """4-byte function selector for a canonical signature string."""
    return bytes_to_int(keccak(signature.encode())[:4])


def event_topic(signature: str) -> int:
    """32-byte event topic hash for a canonical event signature."""
    return keccak_int(signature.encode())


def encode_call(signature: str, args: Iterable[int]) -> bytes:
    """Build calldata: selector plus 32-byte-encoded arguments."""
    payload = selector(signature).to_bytes(4, "big")
    for arg in args:
        payload += int_to_bytes32(arg)
    return payload


def decode_uint(return_data: bytes) -> int:
    """Decode a single uint256 return value."""
    return bytes_to_int(return_data[:32])


def mapping_slot(base_slot: int, key: int) -> int:
    """Storage slot of ``mapping_at_base[key]`` (Solidity layout)."""
    return keccak_int(int_to_bytes32(key) + int_to_bytes32(base_slot))


def nested_mapping_slot(base_slot: int, key1: int, key2: int) -> int:
    """Storage slot of ``mapping_at_base[key1][key2]``."""
    return mapping_slot(mapping_slot(base_slot, key1), key2)
