"""minisol compiler driver: source text -> deployable contract."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.evm.assembler import assemble
from repro.minisol import ast_nodes as ast
from repro.minisol.abi import encode_call, mapping_slot, selector
from repro.minisol.codegen import CodeGenerator
from repro.minisol.parser import parse


@dataclass
class FunctionABI:
    """Callable surface of one compiled function."""

    name: str
    signature: str
    selector: int
    param_types: Tuple[str, ...]
    returns_value: bool


@dataclass
class CompiledContract:
    """Compilation artifact: runtime bytecode plus ABI and storage layout."""

    name: str
    code: bytes
    assembly: str
    functions: Dict[str, FunctionABI] = field(default_factory=dict)
    storage_layout: Dict[str, int] = field(default_factory=dict)
    contract_ast: Optional[ast.Contract] = None
    #: Peephole statistics when compiled with ``optimize=True``
    #: (:class:`repro.evm.jit.peephole.PeepholeStats`), else ``None``.
    peephole_stats: Optional[object] = None

    def calldata(self, fn_name: str, *args: int) -> bytes:
        """Encode a call to ``fn_name`` with integer arguments."""
        fn = self.functions.get(fn_name)
        if fn is None:
            raise CompileError(f"no function {fn_name!r} in {self.name}")
        if len(args) != len(fn.param_types):
            raise CompileError(
                f"{fn.signature} expects {len(fn.param_types)} args, "
                f"got {len(args)}")
        return encode_call(fn.signature, args)

    def deploy_code(self) -> bytes:
        """Init bytecode for an on-chain deployment (tx.to == 0 or the
        CREATE opcode): copies the runtime code into memory and returns
        it, solc-style."""
        runtime = self.code
        init_length = 15  # fixed-width prologue below
        prologue = bytes([
            0x61, *len(runtime).to_bytes(2, "big"),   # PUSH2 len
            0x61, *init_length.to_bytes(2, "big"),    # PUSH2 offset
            0x60, 0x00,                               # PUSH1 0
            0x39,                                     # CODECOPY
            0x61, *len(runtime).to_bytes(2, "big"),   # PUSH2 len
            0x60, 0x00,                               # PUSH1 0
            0xF3,                                     # RETURN
        ])
        assert len(prologue) == init_length
        return prologue + runtime

    def slot_of(self, var_name: str, *keys: int) -> int:
        """Storage slot of a state variable (with mapping keys if any)."""
        if var_name not in self.storage_layout:
            raise CompileError(f"no state variable {var_name!r}")
        slot = self.storage_layout[var_name]
        for key in keys:
            slot = mapping_slot(slot, key)
        return slot


def compile_contract(source: str,
                     optimize: bool = False) -> CompiledContract:
    """Compile minisol ``source`` into a :class:`CompiledContract`.

    ``optimize=True`` runs the peephole superoptimizer
    (:func:`repro.evm.jit.peephole.optimize_assembly`) over the
    generated assembly before byte assembly.  Off by default: recorded
    datasets and golden gas numbers were produced without it, and
    removed instructions change gas accounting.
    """
    contract = parse(source)
    _check(contract)
    generator = CodeGenerator(contract)
    assembly = generator.generate()
    peephole_stats = None
    if optimize:
        from repro.evm.jit.peephole import optimize_assembly
        assembly, peephole_stats = optimize_assembly(assembly)
    code = assemble(assembly)

    compiled = CompiledContract(
        name=contract.name, code=code, assembly=assembly,
        contract_ast=contract, peephole_stats=peephole_stats)
    for var in contract.state_vars:
        compiled.storage_layout[var.name] = var.slot

    # Private functions are inlined at call sites and have no external
    # surface: no selector, no dispatch, no ABI entry.
    all_functions: List[ast.Function] = [
        fn for fn in contract.functions if not fn.private]
    for var in contract.state_vars:
        if not var.public:
            continue
        if isinstance(var.type, ast.ScalarType):
            params: List[Tuple[str, str]] = []
        else:
            params = [("uint256", f"key{i}") for i in range(var.type.depth())]
        all_functions.append(ast.Function(
            name=var.name, params=params, returns_value=True, body=[]))

    for fn in all_functions:
        compiled.functions[fn.name] = FunctionABI(
            name=fn.name,
            signature=fn.signature,
            selector=selector(fn.signature),
            param_types=tuple(t for t, _ in fn.params),
            returns_value=fn.returns_value,
        )
    return compiled


def _check(contract: ast.Contract) -> None:
    """Minimal semantic validation before codegen."""
    seen_vars = set()
    for var in contract.state_vars:
        if var.name in seen_vars:
            raise CompileError(f"duplicate state variable {var.name!r}")
        seen_vars.add(var.name)
    seen_fns = set()
    for fn in contract.functions:
        if fn.name in seen_fns:
            raise CompileError(f"duplicate function {fn.name!r}")
        if fn.name in seen_vars:
            raise CompileError(
                f"function {fn.name!r} collides with a public getter")
        seen_fns.add(fn.name)
