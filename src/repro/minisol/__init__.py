"""minisol: a Solidity-subset compiler targeting our EVM.

The paper's workloads are real Solidity contracts (price oracles, DeFi).
To reproduce their *shape* — storage mappings addressed through keccak of
scratch memory, calldata ABI dispatch by selector, timestamp-dependent
branches, cross-contract calls — we compile a Solidity subset to EVM
bytecode with the same code-generation idioms solc uses (the paper's
Figure 7 trace is recognizably the same pattern our compiler emits).

Supported subset: ``uint256``/``address``/``bool`` scalars, one- and
two-level ``mapping`` state variables, ``if``/``else``, ``while``,
``require``/``revert``, local variables (allocated in EVM memory, so
register promotion has something to eliminate), events, ``msg.sender``/
``msg.value``/``block.*``, and external calls via the ``extcall``
builtin.
"""

from repro.minisol.compiler import compile_contract, CompiledContract
from repro.minisol.abi import (
    encode_call,
    selector,
    mapping_slot,
    decode_uint,
)

__all__ = [
    "compile_contract",
    "CompiledContract",
    "encode_call",
    "selector",
    "mapping_slot",
    "decode_uint",
]
