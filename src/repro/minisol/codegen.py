"""minisol code generation: AST -> EVM assembly text.

The generated code intentionally mirrors solc's idioms so that traces
look like the paper's Figure 7:

* function dispatch compares the 4-byte calldata selector and JUMPIs,
* mapping slots are derived by MSTOREing key and base slot into scratch
  memory at 0x00/0x20 and hashing 64 bytes (SHA3),
* local variables live in EVM memory (so Forerunner's register promotion
  has real MLOAD/MSTORE traffic to eliminate),
* ``require``/``if`` compile to conditional jumps that become control
  constraints in the accelerated program.

Memory map per call frame:
  0x000..0x03f   scratch (mapping hashes, return value)
  0x080..0xfff   local variables (32 bytes each, incl. inlined calls)
  0x1000..0x10ff event data staging
  0x1100..0x11ff outgoing extcall argument staging
  0x1200..0x121f extcall return buffer
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CompileError
from repro.minisol import ast_nodes as ast
from repro.minisol.abi import event_topic, selector

_LOCALS_BASE = 0x80
_EVENT_BASE = 0x1000
_CALL_ARGS_BASE = 0x1100
_CALL_RET_BASE = 0x1200


# -- inline-call AST rewriting -------------------------------------------------

def _flatten(statements):
    """Flatten nested statement lists produced by return-rewriting."""
    for stmt in statements:
        if isinstance(stmt, list):
            yield from _flatten(stmt)
        else:
            yield stmt


def _rewrite_expr(expr, mapping):
    """Copy an expression with identifiers renamed per ``mapping``."""
    if isinstance(expr, ast.Literal) or isinstance(expr, ast.EnvRead):
        return expr
    if isinstance(expr, ast.Name):
        return ast.Name(mapping.get(expr.ident, expr.ident), expr.line)
    if isinstance(expr, ast.MappingAccess):
        return ast.MappingAccess(
            expr.ident,
            [_rewrite_expr(k, mapping) for k in expr.keys], expr.line)
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _rewrite_expr(expr.left, mapping),
                          _rewrite_expr(expr.right, mapping), expr.line)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _rewrite_expr(expr.operand, mapping),
                         expr.line)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.func,
                        [_rewrite_expr(a, mapping) for a in expr.args],
                        expr.line)
    if isinstance(expr, ast.InternalCall):
        return ast.InternalCall(
            expr.func, [_rewrite_expr(a, mapping) for a in expr.args],
            expr.line)
    raise CompileError(
        f"cannot inline expression {type(expr).__name__}")


def _rewrite_stmt(stmt, mapping, uid, end_label, result_local):
    """Copy a statement for inlining: rename locals, turn returns into
    result-assignment + goto."""
    if isinstance(stmt, ast.VarDecl):
        renamed = f"{uid}.{stmt.ident}"
        init = (_rewrite_expr(stmt.init, mapping)
                if stmt.init is not None else None)
        mapping[stmt.ident] = renamed
        return ast.VarDecl(stmt.type_name, renamed, init, stmt.line)
    if isinstance(stmt, ast.Assign):
        return ast.Assign(_rewrite_expr(stmt.target, mapping),
                          _rewrite_expr(stmt.value, mapping), stmt.line)
    if isinstance(stmt, ast.If):
        return ast.If(
            _rewrite_expr(stmt.condition, mapping),
            list(_flatten(
                _rewrite_stmt(s, mapping, uid, end_label, result_local)
                for s in stmt.then_body)),
            list(_flatten(
                _rewrite_stmt(s, mapping, uid, end_label, result_local)
                for s in stmt.else_body)),
            stmt.line)
    if isinstance(stmt, ast.While):
        return ast.While(
            _rewrite_expr(stmt.condition, mapping),
            list(_flatten(
                _rewrite_stmt(s, mapping, uid, end_label, result_local)
                for s in stmt.body)),
            stmt.line)
    if isinstance(stmt, ast.For):
        init = (_rewrite_stmt(stmt.init, mapping, uid, end_label,
                              result_local)
                if stmt.init is not None else None)
        post = (_rewrite_stmt(stmt.post, mapping, uid, end_label,
                              result_local)
                if stmt.post is not None else None)
        return ast.For(
            init, _rewrite_expr(stmt.condition, mapping), post,
            list(_flatten(
                _rewrite_stmt(s, mapping, uid, end_label, result_local)
                for s in stmt.body)),
            stmt.line)
    if isinstance(stmt, ast.Require):
        return ast.Require(_rewrite_expr(stmt.condition, mapping),
                           stmt.line)
    if isinstance(stmt, ast.RevertStmt):
        return stmt
    if isinstance(stmt, ast.Return):
        value = (_rewrite_expr(stmt.value, mapping)
                 if stmt.value is not None else ast.Literal(0))
        return [ast.Assign(ast.Name(result_local), value, stmt.line),
                ast.Goto(end_label, stmt.line)]
    if isinstance(stmt, ast.Emit):
        return ast.Emit(stmt.event,
                        [_rewrite_expr(a, mapping) for a in stmt.args],
                        stmt.line)
    if isinstance(stmt, ast.ExprStmt):
        return ast.ExprStmt(_rewrite_expr(stmt.expr, mapping), stmt.line)
    raise CompileError(
        f"cannot inline statement {type(stmt).__name__}")

#: Binary operators that need the left operand on top of the stack
#: (EVM ops consume the top as their first operand).
_NEEDS_SWAP = {"-", "/", "%", "<", ">", "<=", ">="}

_SIMPLE_OPS = {
    "+": ["ADD"], "*": ["MUL"], "&": ["AND"], "|": ["OR"], "^": ["XOR"],
    "==": ["EQ"], "!=": ["EQ", "ISZERO"],
    "-": ["SUB"], "/": ["DIV"], "%": ["MOD"],
    "<": ["LT"], ">": ["GT"],
    "<=": ["GT", "ISZERO"], ">=": ["LT", "ISZERO"],
    "<<": ["SHL"], ">>": ["SHR"],
}

_ENV_OPS = {
    "msg.sender": "CALLER",
    "msg.value": "CALLVALUE",
    "block.timestamp": "TIMESTAMP",
    "block.number": "NUMBER",
    "block.coinbase": "COINBASE",
    "block.difficulty": "DIFFICULTY",
    "block.gaslimit": "GASLIMIT",
    "tx.origin": "ORIGIN",
    "tx.gasprice": "GASPRICE",
}


class _FunctionScope:
    """Name resolution inside one function body."""

    def __init__(self, contract: ast.Contract, fn: ast.Function) -> None:
        self.contract = contract
        self.fn = fn
        self.local_offsets: Dict[str, int] = {}

    def declare_local(self, name: str) -> int:
        if name in self.local_offsets:
            raise CompileError(f"duplicate variable {name!r}")
        offset = _LOCALS_BASE + 32 * len(self.local_offsets)
        self.local_offsets[name] = offset
        return offset


class CodeGenerator:
    """Generates one contract's runtime bytecode (as assembly text)."""

    def __init__(self, contract: ast.Contract) -> None:
        self.contract = contract
        self.lines: List[str] = []
        self._label_counter = 0
        self._inline_depth = 0

    # -- helpers -------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append(text)

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def _event_signature(self, name: str) -> str:
        for event in self.contract.events:
            if event.name == name:
                types = ",".join(t for t, _ in event.params)
                return f"{name}({types})"
        raise CompileError(f"unknown event {name!r}")

    # -- top level ---------------------------------------------------------------

    def generate(self) -> str:
        """Emit the full runtime program and return assembly source."""
        functions = [fn for fn in self.contract.functions
                     if not fn.private]
        functions.extend(self._getters())
        # Dispatcher: selector = calldata[0:4].
        self._emit("PUSH 0")
        self._emit("CALLDATALOAD")
        self._emit("PUSH 224")
        self._emit("SHR")
        for fn in functions:
            self._emit("DUP1")
            self._emit(f"PUSH {selector(fn.signature)}")
            self._emit("EQ")
            self._emit(f"PUSH @fn_{fn.name}")
            self._emit("JUMPI")
        self._emit("PUSH @revert_all")
        self._emit("JUMP")
        for fn in functions:
            self._generate_function(fn)
        self._emit("revert_all:")
        self._emit("JUMPDEST")
        self._emit("PUSH 0")
        self._emit("PUSH 0")
        self._emit("REVERT")
        return "\n".join(self.lines)

    def _getters(self) -> List[ast.Function]:
        """Auto-generated getters for public state variables."""
        getters = []
        for var in self.contract.state_vars:
            if not var.public:
                continue
            if isinstance(var.type, ast.ScalarType):
                params = []
            else:
                params = [("uint256", f"key{i}")
                          for i in range(var.type.depth())]
            body_expr: object
            if params:
                keys = [ast.Name(name) for _, name in params]
                body_expr = ast.MappingAccess(var.name, keys)
            else:
                body_expr = ast.Name(var.name)
            getters.append(ast.Function(
                name=var.name, params=params, returns_value=True,
                body=[ast.Return(body_expr)], view=True))
        return getters

    def _generate_function(self, fn: ast.Function) -> None:
        self._emit(f"fn_{fn.name}:")
        self._emit("JUMPDEST")
        scope = _FunctionScope(self.contract, fn)
        # Copy calldata arguments into local slots (like solc's stack
        # copies), so parameters are assignable like any local.
        for index, (_, pname) in enumerate(fn.params):
            offset = scope.declare_local(pname)
            self._emit(f"PUSH {4 + 32 * index}")
            self._emit("CALLDATALOAD")
            self._emit(f"PUSH {offset}")
            self._emit("MSTORE")
        for stmt in fn.body:
            self._statement(scope, stmt)
        self._emit("STOP")

    # -- statements -----------------------------------------------------------------

    def _statement(self, scope: _FunctionScope, stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            offset = scope.declare_local(stmt.ident)
            if stmt.init is not None:
                self._expression(scope, stmt.init)
            else:
                self._emit("PUSH 0")
            self._emit(f"PUSH {offset}")
            self._emit("MSTORE")
            return
        if isinstance(stmt, ast.Assign):
            self._assign(scope, stmt)
            return
        if isinstance(stmt, ast.If):
            self._if(scope, stmt)
            return
        if isinstance(stmt, ast.While):
            self._while(scope, stmt)
            return
        if isinstance(stmt, ast.For):
            self._for(scope, stmt)
            return
        if isinstance(stmt, ast.Goto):
            self._emit(f"PUSH @{stmt.label}")
            self._emit("JUMP")
            return
        if isinstance(stmt, ast.LabelMark):
            self._emit(f"{stmt.label}:")
            self._emit("JUMPDEST")
            return
        if isinstance(stmt, ast.Require):
            self._expression(scope, stmt.condition)
            self._emit("ISZERO")
            self._emit("PUSH @revert_all")
            self._emit("JUMPI")
            return
        if isinstance(stmt, ast.RevertStmt):
            self._emit("PUSH @revert_all")
            self._emit("JUMP")
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expression(scope, stmt.value)
                self._emit("PUSH 0")
                self._emit("MSTORE")
                self._emit("PUSH 32")
                self._emit("PUSH 0")
                self._emit("RETURN")
            else:
                self._emit("STOP")
            return
        if isinstance(stmt, ast.Emit):
            self._emitter(scope, stmt)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._expression(scope, stmt.expr)
            self._emit("POP")
            return
        raise CompileError(f"unsupported statement {type(stmt).__name__}")

    def _assign(self, scope: _FunctionScope, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            # Local variable or scalar state variable.
            if target.ident in scope.local_offsets:
                self._expression(scope, stmt.value)
                self._emit(f"PUSH {scope.local_offsets[target.ident]}")
                self._emit("MSTORE")
                return
            var = self.contract.state_var(target.ident)
            if var is not None and isinstance(var.type, ast.ScalarType):
                self._expression(scope, stmt.value)
                self._emit(f"PUSH {var.slot}")
                self._emit("SSTORE")
                return
            raise CompileError(f"cannot assign to {target.ident!r}",
                               stmt.line)
        if isinstance(target, ast.MappingAccess):
            self._expression(scope, stmt.value)
            self._mapping_slot(scope, target)
            self._emit("SSTORE")
            return
        raise CompileError("invalid assignment target", stmt.line)

    def _if(self, scope: _FunctionScope, stmt: ast.If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        self._expression(scope, stmt.condition)
        self._emit("ISZERO")
        self._emit(f"PUSH @{else_label}")
        self._emit("JUMPI")
        for inner in stmt.then_body:
            self._statement(scope, inner)
        self._emit(f"PUSH @{end_label}")
        self._emit("JUMP")
        self._emit(f"{else_label}:")
        self._emit("JUMPDEST")
        for inner in stmt.else_body:
            self._statement(scope, inner)
        self._emit(f"{end_label}:")
        self._emit("JUMPDEST")

    def _while(self, scope: _FunctionScope, stmt: ast.While) -> None:
        loop_label = self._label("loop")
        end_label = self._label("endloop")
        self._emit(f"{loop_label}:")
        self._emit("JUMPDEST")
        self._expression(scope, stmt.condition)
        self._emit("ISZERO")
        self._emit(f"PUSH @{end_label}")
        self._emit("JUMPI")
        for inner in stmt.body:
            self._statement(scope, inner)
        self._emit(f"PUSH @{loop_label}")
        self._emit("JUMP")
        self._emit(f"{end_label}:")
        self._emit("JUMPDEST")

    def _for(self, scope: _FunctionScope, stmt: ast.For) -> None:
        loop_label = self._label("forloop")
        end_label = self._label("endfor")
        if stmt.init is not None:
            self._statement(scope, stmt.init)
        self._emit(f"{loop_label}:")
        self._emit("JUMPDEST")
        self._expression(scope, stmt.condition)
        self._emit("ISZERO")
        self._emit(f"PUSH @{end_label}")
        self._emit("JUMPI")
        for inner in stmt.body:
            self._statement(scope, inner)
        if stmt.post is not None:
            self._statement(scope, stmt.post)
        self._emit(f"PUSH @{loop_label}")
        self._emit("JUMP")
        self._emit(f"{end_label}:")
        self._emit("JUMPDEST")

    def _emitter(self, scope: _FunctionScope, stmt: ast.Emit) -> None:
        signature = self._event_signature(stmt.event)
        for i, arg in enumerate(stmt.args):
            self._expression(scope, arg)
            self._emit(f"PUSH {_EVENT_BASE + 32 * i}")
            self._emit("MSTORE")
        self._emit(f"PUSH {event_topic(signature)}")
        self._emit(f"PUSH {32 * len(stmt.args)}")
        self._emit(f"PUSH {_EVENT_BASE}")
        self._emit("LOG1")

    # -- expressions --------------------------------------------------------------------

    def _expression(self, scope: _FunctionScope, expr) -> None:
        """Emit code leaving exactly one value on the stack."""
        if isinstance(expr, ast.Literal):
            self._emit(f"PUSH {expr.value}")
            return
        if isinstance(expr, ast.Name):
            self._name(scope, expr)
            return
        if isinstance(expr, ast.EnvRead):
            self._emit(_ENV_OPS[expr.field_path])
            return
        if isinstance(expr, ast.MappingAccess):
            self._mapping_slot(scope, expr)
            self._emit("SLOAD")
            return
        if isinstance(expr, ast.Binary):
            self._binary(scope, expr)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                self._expression(scope, expr.operand)
                self._emit("ISZERO")
            else:  # unary minus: 0 - x
                self._expression(scope, expr.operand)
                self._emit("PUSH 0")
                self._emit("SUB")
            return
        if isinstance(expr, ast.Call):
            self._builtin(scope, expr)
            return
        if isinstance(expr, ast.InternalCall):
            self._inline_call(scope, expr)
            return
        raise CompileError(f"unsupported expression {type(expr).__name__}")

    def _name(self, scope: _FunctionScope, expr: ast.Name) -> None:
        if expr.ident in scope.local_offsets:
            self._emit(f"PUSH {scope.local_offsets[expr.ident]}")
            self._emit("MLOAD")
            return
        var = self.contract.state_var(expr.ident)
        if var is not None:
            if not isinstance(var.type, ast.ScalarType):
                raise CompileError(
                    f"mapping {expr.ident!r} needs an index", expr.line)
            self._emit(f"PUSH {var.slot}")
            self._emit("SLOAD")
            return
        raise CompileError(f"unknown identifier {expr.ident!r}", expr.line)

    def _binary(self, scope: _FunctionScope, expr: ast.Binary) -> None:
        if expr.op == "&&":
            end_label = self._label("and_end")
            self._expression(scope, expr.left)
            self._emit("DUP1")
            self._emit("ISZERO")
            self._emit(f"PUSH @{end_label}")
            self._emit("JUMPI")
            self._emit("POP")
            self._expression(scope, expr.right)
            self._emit(f"{end_label}:")
            self._emit("JUMPDEST")
            return
        if expr.op == "||":
            end_label = self._label("or_end")
            self._expression(scope, expr.left)
            self._emit("DUP1")
            self._emit(f"PUSH @{end_label}")
            self._emit("JUMPI")
            self._emit("POP")
            self._expression(scope, expr.right)
            self._emit(f"{end_label}:")
            self._emit("JUMPDEST")
            return
        ops = _SIMPLE_OPS.get(expr.op)
        if ops is None:
            raise CompileError(f"unsupported operator {expr.op!r}", expr.line)
        self._expression(scope, expr.left)
        self._expression(scope, expr.right)
        if expr.op in _NEEDS_SWAP:
            self._emit("SWAP1")
        for mnemonic in ops:
            self._emit(mnemonic)

    def _mapping_slot(self, scope: _FunctionScope,
                      access: ast.MappingAccess) -> None:
        """Leave the storage slot of a (nested) mapping access on the stack.

        Mirrors solc: key in scratch 0x00, slot in scratch 0x20,
        SHA3(0x00, 0x40); nesting re-hashes with the previous digest as
        the base slot.
        """
        var = self.contract.state_var(access.ident)
        if var is None or not isinstance(var.type, ast.MappingType):
            raise CompileError(f"{access.ident!r} is not a mapping",
                               access.line)
        if len(access.keys) != var.type.depth():
            raise CompileError(
                f"mapping {access.ident!r} expects {var.type.depth()} "
                f"key(s), got {len(access.keys)}", access.line)
        # First level: keccak(key1 . base_slot)
        self._expression(scope, access.keys[0])
        self._emit("PUSH 0")
        self._emit("MSTORE")
        self._emit(f"PUSH {var.slot}")
        self._emit("PUSH 32")
        self._emit("MSTORE")
        self._emit("PUSH 64")
        self._emit("PUSH 0")
        self._emit("SHA3")
        # Deeper levels: keccak(key_n . previous_digest)
        for key in access.keys[1:]:
            self._emit("PUSH 32")
            self._emit("MSTORE")
            self._expression(scope, key)
            self._emit("PUSH 0")
            self._emit("MSTORE")
            self._emit("PUSH 64")
            self._emit("PUSH 0")
            self._emit("SHA3")

    def _builtin(self, scope: _FunctionScope, expr: ast.Call) -> None:
        if expr.func == "balance":
            self._expression(scope, expr.args[0])
            self._emit("BALANCE")
            return
        if expr.func == "blockhash":
            self._expression(scope, expr.args[0])
            self._emit("BLOCKHASH")
            return
        if expr.func == "keccak":
            self._expression(scope, expr.args[0])
            self._emit("PUSH 0")
            self._emit("MSTORE")
            self._emit("PUSH 32")
            self._emit("PUSH 0")
            self._emit("SHA3")
            return
        if expr.func == "extcall":
            self._extcall(scope, expr, "CALL")
            return
        if expr.func == "staticread":
            self._extcall(scope, expr, "STATICCALL")
            return
        if expr.func == "delegate":
            self._extcall(scope, expr, "DELEGATECALL")
            return
        raise CompileError(f"unknown builtin {expr.func!r}", expr.line)

    # -- internal-call inlining --------------------------------------------

    def _inline_call(self, scope: _FunctionScope,
                     expr: ast.InternalCall) -> None:
        """Inline a same-contract function call, leaving its return
        value (0 for void functions) on the stack.

        Parameters and body locals get fresh caller-scope slots;
        ``return`` statements become an assignment to a result slot
        plus a jump to the inline epilogue.  Recursion is rejected (the
        EVM subset has no frames for it, and unbounded recursion could
        not be unrolled by the specializer anyway).
        """
        fn = self.contract.function(expr.func)
        if fn is None:
            raise CompileError(f"unknown function {expr.func!r}",
                               expr.line)
        if len(expr.args) != len(fn.params):
            raise CompileError(
                f"{fn.name} expects {len(fn.params)} argument(s), "
                f"got {len(expr.args)}", expr.line)
        self._inline_depth += 1
        if self._inline_depth > 8:
            self._inline_depth -= 1
            raise CompileError(
                f"inlining depth exceeded at {fn.name!r} "
                f"(recursive call?)", expr.line)
        uid = self._label("inl")
        mapping: Dict[str, str] = {}
        for (_, pname), arg in zip(fn.params, expr.args):
            local = f"{uid}.{pname}"
            offset = scope.declare_local(local)
            self._expression(scope, arg)
            self._emit(f"PUSH {offset}")
            self._emit("MSTORE")
            mapping[pname] = local
        result_local = f"{uid}.ret"
        result_offset = scope.declare_local(result_local)
        self._emit("PUSH 0")
        self._emit(f"PUSH {result_offset}")
        self._emit("MSTORE")
        end_label = f"{uid}_end"
        body = [_rewrite_stmt(stmt, mapping, uid, end_label,
                              result_local) for stmt in fn.body]
        for stmt in _flatten(body):
            self._statement(scope, stmt)
        self._statement(scope, ast.LabelMark(end_label))
        self._emit(f"PUSH {result_offset}")
        self._emit("MLOAD")
        self._inline_depth -= 1

    def _extcall(self, scope: _FunctionScope, expr: ast.Call,
                 call_op: str = "CALL") -> None:
        """extcall/staticread/delegate(target, selector, arg...) ->
        first return word.

        Reverts the caller if the callee fails (like Solidity's checked
        external call).  ``staticread`` uses STATICCALL (read-only),
        ``delegate`` uses DELEGATECALL (callee code over caller storage).
        """
        if len(expr.args) < 2:
            raise CompileError(
                f"{expr.func} needs (target, selector, ...)", expr.line)
        target = expr.args[0]
        sel_expr = expr.args[1]
        if not isinstance(sel_expr, ast.Literal):
            raise CompileError("extcall selector must be a literal",
                               expr.line)
        call_args = expr.args[2:]
        # Selector word: 4 bytes left-aligned.
        self._emit(f"PUSH {sel_expr.value << 224}")
        self._emit(f"PUSH {_CALL_ARGS_BASE}")
        self._emit("MSTORE")
        for i, arg in enumerate(call_args):
            self._expression(scope, arg)
            self._emit(f"PUSH {_CALL_ARGS_BASE + 4 + 32 * i}")
            self._emit("MSTORE")
        # CALL(gas, to, [value,] argoff, argsize, retoff, retsize):
        # push operands in reverse so gas ends up on top.
        self._emit("PUSH 32")
        self._emit(f"PUSH {_CALL_RET_BASE}")
        self._emit(f"PUSH {4 + 32 * len(call_args)}")
        self._emit(f"PUSH {_CALL_ARGS_BASE}")
        if call_op == "CALL":
            self._emit("PUSH 0")  # value
        self._expression(scope, target)
        self._emit("GAS")
        self._emit(call_op)
        self._emit("ISZERO")
        self._emit("PUSH @revert_all")
        self._emit("JUMPI")
        self._emit(f"PUSH {_CALL_RET_BASE}")
        self._emit("MLOAD")
