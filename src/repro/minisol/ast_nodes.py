"""minisol abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- types ---------------------------------------------------------------

@dataclass(frozen=True)
class ScalarType:
    """uint256 / address / bool — all one EVM word at runtime."""

    name: str  # "uint256" | "address" | "bool"


@dataclass(frozen=True)
class MappingType:
    """mapping(scalar => scalar | mapping(...))."""

    key: ScalarType
    value: object  # ScalarType | MappingType

    def depth(self) -> int:
        inner = self.value
        if isinstance(inner, MappingType):
            return 1 + inner.depth()
        return 1


# -- expressions ------------------------------------------------------------

@dataclass
class Literal:
    value: int
    line: int = 0


@dataclass
class Name:
    """Local variable, function argument, or scalar state variable."""

    ident: str
    line: int = 0


@dataclass
class EnvRead:
    """msg.sender, msg.value, block.timestamp, block.number,
    block.coinbase, block.difficulty, block.gaslimit, tx.origin,
    tx.gasprice."""

    field_path: str  # e.g. "block.timestamp"
    line: int = 0


@dataclass
class MappingAccess:
    """mapping[key] or mapping[key1][key2] (as an rvalue or lvalue)."""

    ident: str
    keys: List[object]
    line: int = 0


@dataclass
class Binary:
    op: str
    left: object
    right: object
    line: int = 0


@dataclass
class Unary:
    op: str  # "!" | "-"
    operand: object
    line: int = 0


@dataclass
class Call:
    """Builtin call: extcall(...), balance(addr), blockhash(n), keccak(x)."""

    func: str
    args: List[object]
    line: int = 0


@dataclass
class InternalCall:
    """Call to another function of the same contract (inlined)."""

    func: str
    args: List[object]
    line: int = 0


# -- statements ----------------------------------------------------------------

@dataclass
class VarDecl:
    type_name: str
    ident: str
    init: Optional[object]
    line: int = 0


@dataclass
class Assign:
    target: object  # Name | MappingAccess
    value: object
    line: int = 0


@dataclass
class If:
    condition: object
    then_body: List[object]
    else_body: List[object]
    line: int = 0


@dataclass
class While:
    condition: object
    body: List[object]
    line: int = 0


@dataclass
class For:
    """for (init; condition; post) { body }"""

    init: object          # VarDecl | Assign | None
    condition: object
    post: object          # Assign | None
    body: List[object]
    line: int = 0


@dataclass
class Require:
    condition: object
    line: int = 0


@dataclass
class RevertStmt:
    line: int = 0


@dataclass
class Return:
    value: Optional[object]
    line: int = 0


@dataclass
class Emit:
    event: str
    args: List[object]
    line: int = 0


@dataclass
class ExprStmt:
    expr: object
    line: int = 0


@dataclass
class Goto:
    """Unconditional jump to a label (internal: inlined returns)."""

    label: str
    line: int = 0


@dataclass
class LabelMark:
    """A jump target (internal: end of an inlined function body)."""

    label: str
    line: int = 0


# -- declarations ---------------------------------------------------------------

@dataclass
class StateVar:
    name: str
    type: object  # ScalarType | MappingType
    slot: int
    public: bool = True


@dataclass
class EventDecl:
    name: str
    params: List[Tuple[str, str]]  # (type, name)


@dataclass
class Function:
    name: str
    params: List[Tuple[str, str]]  # (type, name)
    returns_value: bool
    body: List[object] = field(default_factory=list)
    view: bool = False
    #: Private functions are not dispatched; call sites inline them.
    private: bool = False

    @property
    def signature(self) -> str:
        """Canonical ABI signature, e.g. ``submit(uint256,uint256)``."""
        types = ",".join(t for t, _ in self.params)
        return f"{self.name}({types})"


@dataclass
class Contract:
    name: str
    state_vars: List[StateVar] = field(default_factory=list)
    events: List[EventDecl] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def state_var(self, name: str) -> Optional[StateVar]:
        for var in self.state_vars:
            if var.name == name:
                return var
        return None

    def function(self, name: str) -> Optional[Function]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
