"""Optimistic-concurrency block executor (deterministic parallelism).

Runs a block's transactions in parallel *virtual* lanes against forked
StateDBs, detects read/write-set conflicts at commit, and re-executes
losers serially — the Saraph–Herlihy scheme — while keeping committed
roots, receipts and the Table 2/3 cost columns **byte-identical to
serial execution at every lane count**.  Parallelism surfaces only in
the scheduler's own metrics (critical-path cost units, lane
utilization, abort rates).

How byte-identity is achieved
-----------------------------

*Values.*  A transaction commits from its fork only when none of its
accessed keys intersect the *actual* write set of any earlier
transaction (clean forks contribute their optimistic writes; serially
re-executed ones contribute the write keys harvested from the master
journal).  By induction its fork observed exactly the values serial
execution would have.  Commutative coinbase fee credits are excluded
from conflict sets and applied as deltas in block order; a transaction
touching the coinbase balance explicitly is "entangled" and always
re-executes serially.

*Costs.*  A fork's I/O classification is warped (it sees the block's
pre-state as cold where serial execution would have been warmed by
earlier transactions), so each fork records its ordered probe log and
the committer *replays* it against the master state's warmth and the
real node cache — performing exactly the node-cache lookups and
insertions serial execution would have performed, in the same order.
The replayed I/O total replaces the fork's, making the committed tally
(and all downstream Table 2/3 numbers) serial-equivalent.

*Faults.*  Three ``sched.*`` sites cover the new machinery: a
``sched.fork`` fault aborts that transaction to the serial path, a
``sched.conflict_scan`` fault aborts the whole block to serial, and a
``sched.commit`` fault reverts the partial apply and re-executes the
transaction serially.  All three therefore degrade to the serial
anchor — commitments and costs stay canonical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR
from repro.obs.registry import MetricsRegistry, get_registry
from repro.sched.conflicts import (
    AccessSet,
    ConflictGraph,
    build_conflict_graph,
    greedy_schedule,
)
from repro.sched.lanes import LaneSet
from repro.state.diskio import DiskModel, NODE_COST, WARM_COST
from repro.state.statedb import StateDB
from repro.state.trie import trie_depth


class SharedCacheView:
    """Non-mutating view of a :class:`NodeCache` shared by all forks
    of one block.

    Optimistic forks classify warmth against the block-start cache
    without disturbing its LRU recency or hit/miss counters — those
    mutations happen once, at commit time, in serial order.  A fork's
    cold loads land in a block-local overlay instead, modelling the
    shared database/page cache under real concurrent execution: the
    first fork to walk a trie path pays the cold cost, sibling forks
    in the same block then classify that key warm.  The overlay is
    lane-count invariant because the optimistic phase visits
    transactions in block order regardless of lane assignment.
    """

    __slots__ = ("_entries", "_shared")

    def __init__(self, cache) -> None:
        self._entries = cache._entries if cache is not None else {}
        self._shared: set = set()

    def contains(self, key) -> bool:
        return key in self._entries or key in self._shared

    def add(self, key) -> None:
        self._shared.add(key)


class TrackingState(StateDB):
    """A fork of the committed world that records everything the
    committer needs: fine-grained read/write keys (conflicts), the
    ordered cost-probe log (serial-equivalent I/O replay), created
    accounts, and commutative coinbase credits."""

    def __init__(self, world, node_cache_view, coinbase: int) -> None:
        super().__init__(world, node_cache=node_cache_view)
        self.coinbase = coinbase
        #: Ordered cost probes: ("acct", addr) / ("slot", (addr, slot))
        #: — one per disk charge a serial execution would make — plus
        #: chargeless ("mark", addr) entries for created accounts.
        self.probes: List[tuple] = []
        self.read_keys: Dict[tuple, None] = {}
        self.write_keys: Dict[tuple, None] = {}
        self.created_accounts: List[int] = []
        self.coinbase_delta = 0
        self._suppress = False

    # -- recording helpers ----------------------------------------------

    def _note_read(self, key: tuple) -> None:
        if not self._suppress:
            self.read_keys.setdefault(key, None)

    def _note_write(self, key: tuple) -> None:
        if not self._suppress:
            self.write_keys.setdefault(key, None)

    @property
    def entangled(self) -> bool:
        key = ("bal", self.coinbase)
        return (key in self.read_keys or key in self.write_keys
                or self.coinbase in self.created_accounts)

    def access_set(self) -> AccessSet:
        return AccessSet(
            reads=frozenset(self.read_keys),
            writes=frozenset(self.write_keys),
            created=tuple(self.created_accounts),
            coinbase_delta=self.coinbase_delta,
            entangled=self.entangled)

    # -- probe recording (cost accounting) -------------------------------

    def _load_account(self, address: int):
        self.probes.append(("acct", address))
        return super()._load_account(address)

    def get_storage(self, address: int, slot: int) -> int:
        value = super().get_storage(address, slot)
        self.probes.append(("slot", (address, slot)))
        self._note_read(("slot", address, slot))
        return value

    # -- semantic read/write recording -----------------------------------

    def get_balance(self, address: int) -> int:
        self._note_read(("bal", address))
        return super().get_balance(address)

    def set_balance(self, address: int, value: int) -> None:
        self._note_write(("bal", address))
        super().set_balance(address, value)

    def add_balance(self, address: int, amount: int) -> None:
        if address == self.coinbase and not self._suppress:
            # Commutative miner-fee credit: pay the same cost probes a
            # serial execution would (get + set), but keep the keys out
            # of the conflict sets — increments commute.
            self._suppress = True
            try:
                super().add_balance(address, amount)
            finally:
                self._suppress = False
            self.coinbase_delta += amount
            return
        super().add_balance(address, amount)

    def get_nonce(self, address: int) -> int:
        self._note_read(("nonce", address))
        return super().get_nonce(address)

    def increment_nonce(self, address: int) -> None:
        # Read-modify-write: the new nonce depends on the old one.
        self._note_read(("nonce", address))
        self._note_write(("nonce", address))
        super().increment_nonce(address)

    def get_code(self, address: int) -> bytes:
        self._note_read(("code", address))
        return super().get_code(address)

    def set_code(self, address: int, code: bytes) -> None:
        self._note_write(("code", address))
        super().set_code(address, code)

    def set_storage(self, address: int, slot: int, value: int) -> None:
        self._note_write(("slot", address, slot))
        super().set_storage(address, slot, value)
        # SSTORE never charges slot I/O but does mark the slot loaded;
        # record a chargeless mark so a later SLOAD of the same slot
        # replays warm, exactly as serial execution would classify it.
        self.probes.append(("slotmark", (address, slot)))

    def account_exists(self, address: int) -> bool:
        self._note_read(("exist", address))
        return super().account_exists(address)

    def create_account(self, address: int, balance: int = 0,
                       code: bytes = b"") -> None:
        for kind in ("exist", "bal", "nonce", "code"):
            self._note_write((kind, address))
        self.created_accounts.append(address)
        self.probes.append(("mark", address))
        super().create_account(address, balance=balance, code=code)


@dataclass
class TxOutcome:
    """One transaction's committed result plus scheduling telemetry."""

    tx: object
    receipt: object
    index: int
    lane_id: int = 0
    start: int = 0
    finish: int = 0
    aborted: bool = False
    abort_reason: str = ""
    optimistic_cost: int = 0
    canonical_cost: int = 0
    #: Master-journal positions (start, end) spanning this tx's commit
    #: — valid at every lane count, since clean forks also apply
    #: through the master journal in block order.  Consumed by
    #: :meth:`StateDB.witness_deltas` before the block commits.
    journal_span: Tuple[int, int] = (0, 0)
    #: Master log-list span (start, end) for this transaction.
    logs_span: Tuple[int, int] = (0, 0)


@dataclass
class BlockSchedule:
    """Per-block scheduling outcome (deterministic, report-ready)."""

    block_number: int
    lanes: int
    txs: int
    clean: int = 0
    aborted_conflict: int = 0
    aborted_entangled: int = 0
    aborted_fault: int = 0
    conflict_pairs: int = 0
    possible_pairs: int = 0
    greedy_depth: int = 0
    serial_cost: int = 0
    optimistic_makespan: int = 0
    commit_cost: int = 0
    reexec_cost: int = 0
    lane_utilization_permille: List[int] = field(default_factory=list)

    @property
    def aborted(self) -> int:
        return (self.aborted_conflict + self.aborted_entangled
                + self.aborted_fault)

    @property
    def critical_path(self) -> int:
        return self.optimistic_makespan + self.commit_cost \
            + self.reexec_cost

    @property
    def speedup(self) -> float:
        if self.critical_path <= 0:
            return 1.0
        return self.serial_cost / self.critical_path

    @property
    def conflict_rate(self) -> float:
        if not self.possible_pairs:
            return 0.0
        return self.conflict_pairs / self.possible_pairs

    def as_dict(self) -> Dict[str, object]:
        return {
            "block": self.block_number,
            "lanes": self.lanes,
            "txs": self.txs,
            "clean": self.clean,
            "aborted": {
                "conflict": self.aborted_conflict,
                "entangled": self.aborted_entangled,
                "faulted": self.aborted_fault,
            },
            "conflict_pairs": self.conflict_pairs,
            "conflict_rate": round(self.conflict_rate, 6),
            "greedy_depth": self.greedy_depth,
            "serial_cost": self.serial_cost,
            "optimistic_makespan": self.optimistic_makespan,
            "commit_cost": self.commit_cost,
            "reexec_cost": self.reexec_cost,
            "critical_path": self.critical_path,
            "speedup": round(self.speedup, 4),
            "lane_utilization_permille": list(
                self.lane_utilization_permille),
        }


#: ``execute_fn(tx, state) -> AcceleratedReceipt`` — the node's
#: execution strategy (AP fast path with containment, or plain EVM).
ExecuteFn = Callable[[object, StateDB], object]


class ParallelBlockExecutor:
    """Executes one block across N deterministic lanes.

    ``lanes == 1`` short-circuits to the legacy serial loop (same call
    sequence, same draws, same costs); ``lanes >= 2`` runs the
    optimistic/conflict/commit pipeline documented in the module
    docstring.  Either way the committed master state, receipts and
    tallies are byte-identical.
    """

    def __init__(self, lanes: int = 1,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None, guard=None) -> None:
        self.lanes = max(1, lanes)
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.guard = guard
        obs = (registry or get_registry()).scope("sched")
        self.c_blocks = obs.counter("blocks")
        self.c_blocks_parallel = obs.counter("blocks_parallel")
        self.c_txs = obs.counter("transactions")
        self.c_clean = obs.counter("clean_commits")
        self.c_abort_conflict = obs.counter("aborted.conflict")
        self.c_abort_entangled = obs.counter("aborted.entangled")
        self.c_abort_fault = obs.counter("aborted.faulted")
        self.c_conflict_pairs = obs.counter("conflict_pairs")
        self.c_possible_pairs = obs.counter("possible_pairs")
        self.c_serial_cost = obs.counter("serial_cost_units")
        self.c_critical_path = obs.counter("critical_path_units")
        self.c_reexec_cost = obs.counter("reexec_cost_units")
        self.c_commit_cost = obs.counter("commit_cost_units")
        self.g_utilization = obs.gauge("lane_utilization_permille")
        self.schedules: List[BlockSchedule] = []

    # -- entry point -----------------------------------------------------

    def execute_block(self, block, master: StateDB, plans,
                      execute_fn: ExecuteFn) -> List[TxOutcome]:
        """Execute ``block`` onto ``master`` (uncommitted).

        ``plans`` is the ordered list of transactions (whatever objects
        ``execute_fn`` accepts alongside a StateDB).  Returns per-tx
        outcomes in block order; the caller commits ``master``.
        """
        self.execute_fn = execute_fn
        if self.lanes <= 1 or len(plans) < 2:
            return self._execute_serial(block, master, plans)
        return self._execute_parallel(block, master, plans)

    # -- serial anchor ---------------------------------------------------

    def _execute_serial(self, block, master: StateDB, plans
                        ) -> List[TxOutcome]:
        outcomes: List[TxOutcome] = []
        serial_cost = 0
        for index, tx in enumerate(plans):
            span_start = master.snapshot()
            logs_start = len(master.logs)
            receipt = self._serial_execute(tx, master)
            cost = receipt.tally.total
            serial_cost += cost
            outcomes.append(TxOutcome(
                tx=tx, receipt=receipt, index=index,
                lane_id=0, start=serial_cost - cost, finish=serial_cost,
                optimistic_cost=cost, canonical_cost=cost,
                journal_span=(span_start, master.snapshot()),
                logs_span=(logs_start, len(master.logs))))
        schedule = BlockSchedule(
            block_number=block.number, lanes=1, txs=len(plans),
            clean=len(plans), serial_cost=serial_cost,
            optimistic_makespan=serial_cost,
            lane_utilization_permille=[1000] if plans else [0])
        self._finish_block(schedule, parallel=False)
        return outcomes

    # -- optimistic / conflict / commit pipeline -------------------------

    def _execute_parallel(self, block, master: StateDB, plans
                          ) -> List[TxOutcome]:
        coinbase = block.header.coinbase
        node_cache = master.node_cache
        cache_view = SharedCacheView(node_cache)
        lane_set = LaneSet(self.lanes)

        # Phase 1 — optimistic: every tx runs on its own fork of the
        # block's pre-state (block order; lane assignment is metrics
        # only, so any lane count sees identical forks).
        forks: List[Optional[TrackingState]] = []
        fork_receipts: List[object] = []
        forced: List[str] = []
        for tx in plans:
            fork = TrackingState(master.world, cache_view, coinbase)

            def attempt(tx=tx, fork=fork):
                self.injector.maybe_raise("sched.fork", tx=tx.hash)
                return self._optimistic_execute(tx, fork)

            if self.guard is not None:
                receipt, faulted = self.guard.run(
                    "sched.fork", attempt, count_fallback=False)
            else:
                try:
                    receipt, faulted = attempt(), False
                except Exception:  # noqa: BLE001 - fork containment
                    receipt, faulted = None, True
            forks.append(fork)
            fork_receipts.append(receipt)
            forced.append("faulted" if faulted or receipt is None else "")
            cost = receipt.tally.total if receipt is not None else 0
            lane_set.dispatch(cost, payload=tx.hash)

        # Conflict graph over the optimistic access sets (metrics +
        # the greedy what-if schedule; the authoritative abort decision
        # interleaves with commit below, where actual writes live).
        def scan():
            self.injector.maybe_raise("sched.conflict_scan",
                                      block=block.number)
            return build_conflict_graph(
                [fork.access_set() for fork in forks])

        if self.guard is not None:
            graph, scan_faulted = self.guard.run(
                "sched.conflict_scan", scan, count_fallback=False)
        else:
            graph, scan_faulted = scan(), False
        if scan_faulted or graph is None:
            # Contained: without a trustworthy scan every tx yields to
            # the serial anchor.
            graph = ConflictGraph(size=len(plans), edges=())
            forced = ["faulted"] * len(plans)

        # Phase 2 — commit in block order against the master state.
        outcomes: List[TxOutcome] = []
        committed_writes: set = set()
        schedule = BlockSchedule(
            block_number=block.number, lanes=self.lanes, txs=len(plans),
            conflict_pairs=len(graph.edges),
            possible_pairs=graph.possible_pairs,
            greedy_depth=greedy_schedule(graph).depth)
        for index, tx in enumerate(plans):
            fork = forks[index]
            receipt = fork_receipts[index]
            access = fork.access_set()
            completion = lane_set.completions[index]
            reason = forced[index]
            if not reason and access.entangled:
                reason = "entangled"
            if not reason and not access.keys.isdisjoint(committed_writes):
                reason = "conflict"
            span_start = master.snapshot()
            logs_start = len(master.logs)
            if not reason:
                reason = self._commit_clean(tx, master, fork, receipt,
                                            schedule)
            if reason:
                journal_mark = master.snapshot()
                receipt = self._serial_execute(tx, master)
                committed_writes |= _journal_write_keys(
                    master, journal_mark)
                schedule.reexec_cost += receipt.tally.total
                self._count_abort(schedule, reason)
            else:
                committed_writes |= set(access.writes)
                for addr in access.created:
                    committed_writes.add(("exist", addr))
                schedule.clean += 1
            cost = receipt.tally.total
            schedule.serial_cost += cost
            outcomes.append(TxOutcome(
                tx=tx, receipt=receipt, index=index,
                lane_id=completion.lane_id,
                start=int(completion.start), finish=int(completion.finish),
                aborted=bool(reason), abort_reason=reason,
                optimistic_cost=int(completion.cost),
                canonical_cost=cost,
                journal_span=(span_start, master.snapshot()),
                logs_span=(logs_start, len(master.logs))))

        schedule.optimistic_makespan = int(lane_set.makespan())
        schedule.lane_utilization_permille = \
            lane_set.lane_utilization_permille()
        self._finish_block(schedule, parallel=True)
        return outcomes

    # -- execution strategies -------------------------------------------

    #: Installed by the node: runs one tx on a state (AP or plain).
    execute_fn: Optional[ExecuteFn] = None

    def _optimistic_execute(self, tx, fork: TrackingState):
        return self.execute_fn(tx, fork)

    def _serial_execute(self, tx, master: StateDB):
        return self.execute_fn(tx, master)

    # -- clean commit ----------------------------------------------------

    def _commit_clean(self, tx, master: StateDB, fork: TrackingState,
                      receipt, schedule: BlockSchedule) -> str:
        """Fold a conflict-free fork into the master state.

        Returns "" on success or an abort reason; on a contained
        ``sched.commit`` fault the partial apply is reverted and the
        caller re-executes serially.
        """
        journal_mark = master.snapshot()
        logs_mark = len(master.logs)

        def apply():
            self.injector.maybe_raise("sched.commit", tx=tx.hash)
            io_units, commit_ops = self._apply_fork(master, fork)
            return io_units, commit_ops

        if self.guard is not None:
            result, faulted = self.guard.run(
                "sched.commit", apply, count_fallback=False)
        else:
            try:
                result, faulted = apply(), False
            except Exception:  # noqa: BLE001 - commit containment
                result, faulted = None, True
        if faulted or result is None:
            master.revert_to(journal_mark)
            del master.logs[logs_mark:]
            return "faulted"
        io_units, commit_ops = result
        # Serial-equivalent tally: the fork's CPU/fixed components are
        # schedule-invariant; its I/O is replaced by the replayed
        # (serially-warmed) total.
        receipt.tally.io_units = io_units
        schedule.commit_cost += commit_ops
        return ""

    def _apply_fork(self, master: StateDB, fork: TrackingState
                    ) -> Tuple[int, int]:
        """Apply a clean fork's effects through the master's journal.

        Returns ``(serial_equivalent_io_units, commit_cost_units)``.
        The replay performs exactly the node-cache lookups/updates a
        serial execution of this tx would have performed, in probe
        order; master warming and value application charge a scratch
        disk so nothing leaks into the critical-path accounting.
        """
        node_cache = master.node_cache
        io_units = self._replay_probes(master, fork, node_cache)

        scratch = DiskModel()
        real_disk, master.disk = master.disk, scratch
        master.node_cache = None
        try:
            for addr in fork.created_accounts:
                account = fork._cache.get(addr)
                if account is None:
                    continue  # creation was reverted inside the fork
                master.create_account(addr, balance=account.balance,
                                      code=account.code)
            # Warm the master exactly as serial execution would have:
            # every probed key enters the master's caches.
            seen: set = set()
            for kind, key in fork.probes:
                if (kind, key) in seen or kind in ("mark", "slotmark"):
                    continue
                seen.add((kind, key))
                if kind == "acct":
                    master._load_account(key)
                else:
                    master.get_storage(key[0], key[1])
            write_ops = 0
            for key in fork.write_keys:
                kind = key[0]
                addr = key[1]
                account = fork._cache.get(addr)
                if account is None:  # pragma: no cover - defensive
                    continue
                write_ops += 1
                if kind == "bal":
                    master.set_balance(addr, account.balance)
                elif kind == "nonce":
                    while master.get_nonce(addr) < account.nonce:
                        master.increment_nonce(addr)
                elif kind == "code":
                    master.set_code(addr, account.code)
                elif kind == "slot":
                    slot = key[2]
                    master.set_storage(addr, slot,
                                       account.storage.get(slot, 0))
                # "exist" is covered by create_account above.
            if fork.coinbase_delta:
                master.add_balance(fork.coinbase, fork.coinbase_delta)
            for entry in fork.logs:
                master.add_log(entry.address, entry.topics, entry.data)
        finally:
            master.disk = real_disk
            master.node_cache = node_cache
        # Critical-path cost of folding the fork in: merging the
        # fork's buffered values into the master's in-memory caches —
        # a warm touch per written key.  The full write charge was
        # already paid during the optimistic phase (it is part of the
        # makespan); replay/warming is *accounting* that feeds the
        # canonical tally, not the scheduler's critical path.
        commit_ops = write_ops * WARM_COST
        return io_units, commit_ops

    def _replay_probes(self, master: StateDB, fork: TrackingState,
                       node_cache) -> int:
        """Serial-equivalent I/O of the fork's ordered probe log.

        Mirrors StateDB's charge classification: tx-local cache hit →
        warm; master (earlier txs this block) warmth → warm, no cache
        interaction; node-cache hit → warm (counts + recency updated on
        the *real* cache); otherwise a cold trie walk plus a node-cache
        insertion — exactly serial execution's sequence.
        """
        io_units = 0
        local: set = set()
        world = master.world
        account_depth = master.disk.account_depth
        for kind, key in fork.probes:
            if kind == "mark":
                local.add(("acct", key))
                continue
            if kind == "slotmark":
                local.add(("slot", key[0], key[1]))
                continue
            if kind == "acct":
                cache_key = ("acct", key)
                if cache_key in local or key in master._cache:
                    io_units += WARM_COST
                elif node_cache is not None \
                        and node_cache.contains(cache_key):
                    io_units += WARM_COST
                else:
                    io_units += NODE_COST * account_depth
                    if node_cache is not None:
                        node_cache.add(cache_key)
                local.add(cache_key)
            else:
                addr, slot = key
                cache_key = ("slot", addr, slot)
                if cache_key in local or (addr, slot) in \
                        master._loaded_slots:
                    io_units += WARM_COST
                elif node_cache is not None \
                        and node_cache.contains(cache_key):
                    io_units += WARM_COST
                else:
                    committed = world.get_account(addr)
                    depth = trie_depth(
                        len(committed.storage) if committed is not None
                        else 0)
                    io_units += NODE_COST * depth
                    if node_cache is not None:
                        node_cache.add(cache_key)
                local.add(cache_key)
        return io_units

    # -- bookkeeping -----------------------------------------------------

    def _count_abort(self, schedule: BlockSchedule, reason: str) -> None:
        if reason == "conflict":
            schedule.aborted_conflict += 1
            self.c_abort_conflict.inc()
        elif reason == "entangled":
            schedule.aborted_entangled += 1
            self.c_abort_entangled.inc()
        else:
            schedule.aborted_fault += 1
            self.c_abort_fault.inc()

    def _finish_block(self, schedule: BlockSchedule,
                      parallel: bool) -> None:
        self.schedules.append(schedule)
        self.c_blocks.inc()
        if parallel:
            self.c_blocks_parallel.inc()
        self.c_txs.inc(schedule.txs)
        self.c_clean.inc(schedule.clean if parallel else 0)
        self.c_conflict_pairs.inc(schedule.conflict_pairs)
        self.c_possible_pairs.inc(schedule.possible_pairs)
        self.c_serial_cost.inc(schedule.serial_cost)
        self.c_critical_path.inc(schedule.critical_path)
        self.c_reexec_cost.inc(schedule.reexec_cost)
        self.c_commit_cost.inc(schedule.commit_cost)
        self.g_utilization.set(
            sum(schedule.lane_utilization_permille)
            // max(len(schedule.lane_utilization_permille), 1))

    def report(self) -> Dict[str, object]:
        """Aggregate, canonical scheduler report across all blocks."""
        serial = self.c_serial_cost.value
        critical = self.c_critical_path.value
        possible = self.c_possible_pairs.value
        return {
            "lanes": self.lanes,
            "blocks": self.c_blocks.value,
            "blocks_parallel": self.c_blocks_parallel.value,
            "transactions": self.c_txs.value,
            "clean_commits": self.c_clean.value,
            "aborted": {
                "conflict": self.c_abort_conflict.value,
                "entangled": self.c_abort_entangled.value,
                "faulted": self.c_abort_fault.value,
            },
            "conflict_pairs": self.c_conflict_pairs.value,
            "possible_pairs": possible,
            "conflict_rate": round(
                self.c_conflict_pairs.value / possible, 6)
            if possible else 0.0,
            "serial_cost_units": serial,
            "critical_path_units": critical,
            "commit_cost_units": self.c_commit_cost.value,
            "reexec_cost_units": self.c_reexec_cost.value,
            "speedup": round(serial / critical, 4) if critical else 1.0,
        }


def _journal_write_keys(master: StateDB, mark: int) -> set:
    """Write keys of everything journaled on ``master`` since ``mark``
    (the *actual* writes of a serially re-executed transaction)."""
    keys: set = set()
    for entry in master._journal[mark:]:
        kind = entry[0]
        if kind == "balance":
            keys.add(("bal", entry[1]))
        elif kind == "nonce":
            keys.add(("nonce", entry[1]))
        elif kind == "code":
            keys.add(("code", entry[1]))
        elif kind == "storage":
            keys.add(("slot", entry[1], entry[2]))
        elif kind == "create":
            addr = entry[1]
            keys.update((("exist", addr), ("bal", addr),
                         ("nonce", addr), ("code", addr)))
    return keys
