"""Read/write-set conflict analysis over transaction traces.

Follows Saraph & Herlihy ("An Empirical Study of Speculative
Concurrency in Ethereum Smart Contracts", PAPERS.md): two transactions
conflict when one's accesses intersect the other's writes.  Keys are
fine-grained — ``("bal", addr)``, ``("nonce", addr)``, ``("code",
addr)``, ``("exist", addr)`` and ``("slot", addr, slot)`` — so two
token transfers touching different balances of the same contract do
not conflict.  Commutative coinbase fee credits are excluded from the
access sets entirely (they commute under addition); a transaction that
reads or writes the coinbase balance *explicitly* is flagged
``entangled`` and always yields to serial order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple


@dataclass
class AccessSet:
    """One transaction's observed state accesses (fork execution)."""

    reads: FrozenSet[tuple] = frozenset()
    writes: FrozenSet[tuple] = frozenset()
    #: Accounts created by this transaction.
    created: Tuple[int, ...] = ()
    #: Net commutative coinbase credit (gas fees); excluded from
    #: ``reads``/``writes`` because increments commute.
    coinbase_delta: int = 0
    #: True when the tx touched the coinbase balance non-commutatively
    #: (explicit read/write) — it must then execute in serial order.
    entangled: bool = False

    @property
    def keys(self) -> FrozenSet[tuple]:
        return self.reads | self.writes

    def conflicts_with_writes(self, writes: FrozenSet[tuple]) -> bool:
        """Would this tx observe (or clobber) any of ``writes``?"""
        return not self.keys.isdisjoint(writes)


def conflicts(earlier: AccessSet, later: AccessSet) -> bool:
    """Does ``later`` depend on (or overwrite) ``earlier``'s effects?

    The Saraph–Herlihy condition for the ordered pair: the later
    transaction's reads *or* writes intersect the earlier one's writes.
    Entangled transactions conflict with everything that credits the
    coinbase (in this model: every fee-paying transaction), so they are
    treated as conflicting unconditionally.
    """
    if later.entangled or earlier.entangled:
        return True
    return later.conflicts_with_writes(earlier.writes)


@dataclass
class ConflictGraph:
    """Pairwise conflicts among a block's transactions (block order)."""

    size: int
    #: Ordered conflict edges (i, j) with i < j in block order.
    edges: Tuple[Tuple[int, int], ...] = ()

    @property
    def possible_pairs(self) -> int:
        return self.size * (self.size - 1) // 2

    @property
    def conflict_rate(self) -> float:
        if not self.possible_pairs:
            return 0.0
        return len(self.edges) / self.possible_pairs

    def predecessors(self, index: int) -> List[int]:
        return [i for (i, j) in self.edges if j == index]


def build_conflict_graph(access_sets: Sequence[AccessSet]) -> ConflictGraph:
    """Pairwise conflict edges via a write-key index (O(total keys))."""
    writers: Dict[tuple, List[int]] = {}
    edges: List[Tuple[int, int]] = []
    entangled_before: List[int] = []
    for j, access in enumerate(access_sets):
        seen: set = set()
        if access.entangled:
            # Entangled txs conflict with every predecessor (any of
            # them may have credited the coinbase) and with every
            # successor (handled when the successor is visited).
            seen.update(range(j))
        else:
            for i in entangled_before:
                seen.add(i)
            for key in access.keys:
                for i in writers.get(key, ()):
                    seen.add(i)
        edges.extend((i, j) for i in sorted(seen))
        for key in access.writes:
            writers.setdefault(key, []).append(j)
        if access.entangled:
            entangled_before.append(j)
    return ConflictGraph(size=len(access_sets), edges=tuple(edges))


@dataclass
class GreedySchedule:
    """Saraph–Herlihy-style greedy parallel schedule.

    Transactions are placed, in block order, into the earliest
    *generation* after every conflicting predecessor — generation g
    holds transactions whose longest conflict chain has length g.  The
    generation count is the schedule's critical path in "steps"; with
    unlimited lanes the achievable parallelism is ``size /
    generations``.
    """

    generations: Tuple[Tuple[int, ...], ...] = ()
    generation_of: Tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.generations)

    def parallelism(self) -> float:
        if not self.generations:
            return 1.0
        return sum(len(g) for g in self.generations) / len(self.generations)


def greedy_schedule(graph: ConflictGraph) -> GreedySchedule:
    """Longest-conflict-chain layering of the conflict graph."""
    generation_of: List[int] = []
    buckets: Dict[int, List[int]] = {}
    preds: Dict[int, List[int]] = {}
    for (i, j) in graph.edges:
        preds.setdefault(j, []).append(i)
    for j in range(graph.size):
        level = 0
        for i in preds.get(j, ()):
            level = max(level, generation_of[i] + 1)
        generation_of.append(level)
        buckets.setdefault(level, []).append(j)
    generations = tuple(tuple(buckets[level])
                        for level in sorted(buckets))
    return GreedySchedule(generations=generations,
                          generation_of=tuple(generation_of))
