"""Deterministic speculative-concurrency scheduler (ISSUE 4).

Forerunner's speedup depends on speculation running concurrently with
non-speculative work on spare cores (paper §2, §6).  This package
reproduces that concurrency *deterministically*: N virtual worker lanes
advance logical-cost clocks merged by a fixed event order, an
optimistic-concurrency block executor runs a block's transactions in
parallel lanes against forked StateDBs (Saraph & Herlihy-style
conflict detection, serial re-execution of losers), and an admission
controller bounds and prioritizes speculation dispatch.  Any lane count
yields byte-identical committed roots, receipts and Table 2/3 columns;
parallelism surfaces only in the scheduler's own metrics (critical-path
cost units, lane utilization, conflict/abort rates).
"""

from repro.sched.admission import (
    AdmissionController,
    HitLikelihoodEstimator,
    PrefetchRequest,
    SpeculationRequest,
)
from repro.sched.conflicts import (
    AccessSet,
    ConflictGraph,
    GreedySchedule,
    build_conflict_graph,
    greedy_schedule,
)
from repro.sched.executor import (
    BlockSchedule,
    ParallelBlockExecutor,
    TrackingState,
    TxOutcome,
)
from repro.sched.lanes import Lane, LaneSet, SchedConfig

__all__ = [
    "AccessSet",
    "AdmissionController",
    "BlockSchedule",
    "ConflictGraph",
    "GreedySchedule",
    "HitLikelihoodEstimator",
    "Lane",
    "LaneSet",
    "ParallelBlockExecutor",
    "PrefetchRequest",
    "SchedConfig",
    "SpeculationRequest",
    "TrackingState",
    "TxOutcome",
    "build_conflict_graph",
    "greedy_schedule",
]
