"""Admission control and backpressure for speculation dispatch.

Replaces the ad-hoc dispatch loop in ``ForerunnerNode.run_speculation``:
every (transaction, context) pair becomes a :class:`SpeculationRequest`
scored by ``predicted-hit-likelihood × gas price`` (the likelihood is a
per-contract EWMA of past merge outcomes, neutral prior 1.0), ordered
stably by ``(-score, seq)``, and cut against deterministic budgets —
per-(tx, head) and total context caps (moved here from the node), a
per-head job budget and a per-cycle queue capacity.  Overflow is
*deferred* into a bounded carry-over queue (drained first next cycle)
and, beyond that, *dropped*; both outcomes are counted, deterministic,
and reported by ``repro report --sched``.

The same controller owns the bounded prefetch queue (ISSUE satellite):
merge-produced prefetch requests are enqueued, dropped lowest-score
first on overflow, and drained FIFO by the node — so prefetch can no
longer grow unboundedly ahead of the speculator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.consensus.packing import priority_key
from repro.faults.injector import NULL_INJECTOR
from repro.obs.registry import MetricsRegistry, get_registry
from repro.sched.lanes import SchedConfig


@dataclass
class SpeculationRequest:
    """One admitted (transaction, context) speculation job."""

    tx: object
    context: object
    seq: int
    score: float
    head: int
    #: Absolute simulated-seconds expiry propagated from the serving
    #: edge (``None`` = no deadline).  Expired requests are cancelled
    #: at dispatch time — the speculation work is never performed.
    deadline: Optional[float] = None

    @property
    def order_key(self) -> Tuple[float, int]:
        return (-self.score, self.seq)


@dataclass
class PrefetchRequest:
    """One queued prefetch (the read-set union of a merged AP path)."""

    keys: tuple
    tx_sender: int
    tx_to: Optional[int]
    seq: int
    score: float


class HitLikelihoodEstimator:
    """Per-contract EWMA of speculation merge outcomes.

    A contract whose speculations keep merging successfully keeps a
    likelihood near 1.0; repeated failures decay it toward the floor
    (never to zero — every contract keeps a probe chance).  Purely
    deterministic: updates depend only on the observation sequence.
    """

    def __init__(self, alpha: float = 0.25, floor: float = 0.05) -> None:
        self.alpha = alpha
        self.floor = floor
        self._scores: Dict[Optional[int], float] = {}

    def likelihood(self, contract: Optional[int]) -> float:
        return self._scores.get(contract, 1.0)

    def observe(self, contract: Optional[int], success: bool) -> None:
        current = self._scores.get(contract, 1.0)
        target = 1.0 if success else 0.0
        updated = (1.0 - self.alpha) * current + self.alpha * target
        self._scores[contract] = max(self.floor, updated)

    def snapshot(self) -> Dict[str, float]:
        return {
            (f"{contract:#x}" if contract is not None else "none"):
                round(score, 6)
            for contract, score in sorted(
                self._scores.items(),
                key=lambda item: (item[0] is None, item[0]))
        }


class AdmissionController:
    """Deterministic budgets + priorities for speculation dispatch."""

    def __init__(self, config: Optional[SchedConfig] = None,
                 max_contexts_per_head: int = 4,
                 max_total_contexts: int = 16,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None,
                 breaker=None) -> None:
        self.config = config or SchedConfig()
        self.max_contexts_per_head = max_contexts_per_head
        self.max_total_contexts = max_total_contexts
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.breaker = breaker
        self.estimator = HitLikelihoodEstimator()
        obs = (registry or get_registry()).scope("admission")
        self.c_cycles = obs.counter("cycles")
        self.c_requested = obs.counter("requested")
        self.c_admitted = obs.counter("admitted")
        self.c_dispatched = obs.counter("dispatched")
        self.c_deferred = obs.counter("deferred")
        self.c_dropped = obs.counter("dropped")
        self.c_capped = obs.counter("capped")
        self.c_expired = obs.counter("expired")
        self.c_breaker_skipped = obs.counter("breaker_skipped")
        self.g_backlog = obs.gauge("backlog")
        self.c_prefetch_queued = obs.counter("prefetch.queued")
        self.c_prefetch_drained = obs.counter("prefetch.drained")
        self.c_prefetch_dropped = obs.counter("prefetch.dropped")
        self.g_prefetch_depth = obs.gauge("prefetch.depth")
        # Speculation caps (moved from the node; the node keeps
        # read-only property views for compatibility).
        self.spec_counts: Dict[Tuple[int, int], int] = {}
        self.total_spec: Dict[int, int] = {}
        self._per_head_dispatched: Dict[int, int] = {}
        self._deferred: List[SpeculationRequest] = []
        self._deferred_head: int = -1
        self._seq = 0
        self._prefetch_queue: List[PrefetchRequest] = []
        self._prefetch_seq = 0
        #: Per-transaction speculation deadlines (absolute simulated
        #: seconds), stamped by the serving edge at acceptance.
        self._deadlines: Dict[int, float] = {}

    # -- scoring ---------------------------------------------------------

    def score(self, tx) -> float:
        """Priority = predicted-hit-likelihood × gas price.

        Uses the packing layer's shared priority currency
        (:func:`repro.consensus.packing.priority_key`) so admission and
        block packing rank fees identically.
        """
        (_, neg_price) = priority_key(tx)
        return self.estimator.likelihood(tx.to) * float(-neg_price)

    def observe(self, contract: Optional[int], success: bool) -> None:
        self.estimator.observe(contract, success)

    # -- deadline propagation (from the serving edge) --------------------

    def set_deadline(self, tx_hash: int, expires_at: float) -> None:
        """Stamp a speculation deadline for ``tx_hash``.

        Requests admitted after this carry the deadline; once it
        passes, :meth:`allows_dispatch` cancels them (counted as
        ``expired``) instead of spending worker time on speculation
        whose requester has already given up.
        """
        self._deadlines[tx_hash] = expires_at

    def deadline_for(self, tx_hash: int) -> Optional[float]:
        return self._deadlines.get(tx_hash)

    # -- admission -------------------------------------------------------

    def has_backlog(self) -> bool:
        return bool(self._deferred) or bool(self._prefetch_queue)

    def admit(self, candidates: Sequence[Tuple[object, Sequence[object]]],
              head: int) -> List[SpeculationRequest]:
        """One admission cycle: score, order, and budget the requests.

        ``candidates`` is the prediction's ordered (tx, contexts) list.
        Returns the dispatch list for this cycle; overflow beyond the
        cycle's queue capacity is deferred (bounded) or dropped.
        Raises only when the ``sched.admit`` fault site fires — the
        node contains that with its guard (cycle skipped).
        """
        self.injector.maybe_raise("sched.admit", head=head)
        self.c_cycles.inc()
        requests: List[SpeculationRequest] = []
        # Deferred carry-over is re-admitted first; requests deferred
        # under an older head are stale (their contexts were built for
        # that head's state) and are dropped deterministically.
        if self._deferred:
            if self._deferred_head == head:
                requests.extend(self._deferred)
            else:
                self.c_dropped.inc(len(self._deferred))
            self._deferred = []
        budgeted = self._cap_filter(candidates, head)
        requests.extend(budgeted)
        requests.sort(key=lambda request: request.order_key)
        admitted = requests[:self.config.queue_capacity]
        overflow = requests[self.config.queue_capacity:]
        self.c_admitted.inc(len(admitted))
        self.defer(overflow, head)
        self.g_backlog.set(len(self._deferred))
        return admitted

    def _cap_filter(self, candidates, head: int
                    ) -> List[SpeculationRequest]:
        """Apply per-(tx, head) / total caps + breaker skips."""
        result: List[SpeculationRequest] = []
        for tx, contexts in candidates:
            head_key = (tx.hash, head)
            done_here = self.spec_counts.get(head_key, 0)
            done_total = self.total_spec.get(tx.hash, 0)
            if done_here >= self.max_contexts_per_head:
                self.c_capped.inc(len(contexts))
                continue
            if done_total >= self.max_total_contexts:
                self.c_capped.inc(len(contexts))
                continue
            if self.breaker is not None and not self.breaker.allows(tx.to):
                self.c_breaker_skipped.inc(len(contexts))
                continue
            allowance = self.max_contexts_per_head - done_here
            for context in list(contexts)[:allowance]:
                self.c_requested.inc()
                result.append(SpeculationRequest(
                    tx=tx, context=context, seq=self._seq,
                    score=self.score(tx), head=head,
                    deadline=self._deadlines.get(tx.hash)))
                self._seq += 1
        return result

    def release(self, tx_hash: int) -> int:
        """Forget everything admitted for ``tx_hash`` (reorg requeue).

        Clears the per-(tx, head) and total context caps and purges any
        deferred carry-over requests for the transaction.  Deferred
        entries carry scores computed under the abandoned head's state
        — re-dispatching them would speculate on a stale priority
        snapshot, so the next admission cycle must re-score the
        transaction from its fresh pool entry instead.  Returns the
        number of deferred requests purged.
        """
        self.total_spec.pop(tx_hash, None)
        self._deadlines.pop(tx_hash, None)
        for key in [key for key in self.spec_counts
                    if key[0] == tx_hash]:
            del self.spec_counts[key]
        before = len(self._deferred)
        if before:
            self._deferred = [request for request in self._deferred
                              if request.tx.hash != tx_hash]
            purged = before - len(self._deferred)
            if purged:
                self.c_dropped.inc(purged)
                self.g_backlog.set(len(self._deferred))
            return purged
        return 0

    def defer(self, requests: Iterable[SpeculationRequest],
              head: int) -> None:
        """Carry requests to the next cycle, bounded by
        ``defer_capacity`` (the rest is dropped, counted)."""
        pending = list(requests)
        if not pending:
            return
        room = self.config.defer_capacity - len(self._deferred)
        keep, drop = pending[:max(room, 0)], pending[max(room, 0):]
        self._deferred.extend(keep)
        self._deferred_head = head
        self.c_deferred.inc(len(keep))
        self.c_dropped.inc(len(drop))
        self.g_backlog.set(len(self._deferred))

    def allows_dispatch(self, request: SpeculationRequest,
                        now: Optional[float] = None) -> bool:
        """Re-check caps at dispatch time (deferred requests were
        admitted a cycle earlier; caps may have filled since).

        With ``now``, an expired edge-propagated deadline cancels the
        request here — the speculation work is never performed.
        """
        if (now is not None and request.deadline is not None
                and now >= request.deadline):
            self.c_expired.inc()
            return False
        head_key = (request.tx.hash, request.head)
        if self.spec_counts.get(head_key, 0) >= self.max_contexts_per_head:
            return False
        if self.total_spec.get(request.tx.hash, 0) >= self.max_total_contexts:
            return False
        return not self.head_budget_exhausted(request.head)

    def note_dispatched(self, request: SpeculationRequest) -> None:
        """Record one actually-performed speculation (cap accounting —
        exactly where the legacy node incremented its counters)."""
        head_key = (request.tx.hash, request.head)
        self.spec_counts[head_key] = self.spec_counts.get(head_key, 0) + 1
        self.total_spec[request.tx.hash] = \
            self.total_spec.get(request.tx.hash, 0) + 1
        self._per_head_dispatched[request.head] = \
            self._per_head_dispatched.get(request.head, 0) + 1
        self.c_dispatched.inc()

    def head_budget_exhausted(self, head: int) -> bool:
        return (self._per_head_dispatched.get(head, 0)
                >= self.config.max_jobs_per_head)

    # -- bounded prefetch queue (ISSUE satellite) ------------------------

    def queue_prefetch(self, keys, tx_sender: int, tx_to: Optional[int],
                       score: float) -> bool:
        """Enqueue one prefetch request; on overflow the lowest-score
        (newest-last) entry is dropped deterministically."""
        request = PrefetchRequest(keys=tuple(keys), tx_sender=tx_sender,
                                  tx_to=tx_to, seq=self._prefetch_seq,
                                  score=score)
        self._prefetch_seq += 1
        self._prefetch_queue.append(request)
        self.c_prefetch_queued.inc()
        dropped = False
        if len(self._prefetch_queue) > self.config.prefetch_queue_capacity:
            victim = max(self._prefetch_queue,
                         key=lambda r: (-r.score, r.seq))
            self._prefetch_queue.remove(victim)
            self.c_prefetch_dropped.inc()
            dropped = victim is request
        self.g_prefetch_depth.set(len(self._prefetch_queue))
        return not dropped

    def drain_prefetches(self, limit: Optional[int] = None
                         ) -> List[PrefetchRequest]:
        """Dequeue up to ``limit`` requests in FIFO (arrival) order —
        preserving the legacy prefetcher's cost accounting order."""
        if limit is None:
            limit = len(self._prefetch_queue)
        batch = self._prefetch_queue[:limit]
        self._prefetch_queue = self._prefetch_queue[limit:]
        self.c_prefetch_drained.inc(len(batch))
        self.g_prefetch_depth.set(len(self._prefetch_queue))
        return batch

    def prefetch_queue_depth(self) -> int:
        return len(self._prefetch_queue)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Canonical, deterministic admission report payload."""
        return {
            "cycles": self.c_cycles.value,
            "requested": self.c_requested.value,
            "admitted": self.c_admitted.value,
            "dispatched": self.c_dispatched.value,
            "deferred": self.c_deferred.value,
            "dropped": self.c_dropped.value,
            "capped": self.c_capped.value,
            "expired": self.c_expired.value,
            "breaker_skipped": self.c_breaker_skipped.value,
            "backlog": len(self._deferred),
            "prefetch": {
                "queued": self.c_prefetch_queued.value,
                "drained": self.c_prefetch_drained.value,
                "dropped": self.c_prefetch_dropped.value,
                "depth": len(self._prefetch_queue),
            },
            "likelihood": self.estimator.snapshot(),
        }
