"""Virtual worker lanes with deterministic logical-cost clocks.

A :class:`LaneSet` models N parallel workers without threads: each lane
owns a monotone clock in whatever deterministic currency the caller
uses (cost units for the block executor, simulated seconds for the
speculation worker pool).  Dispatch always picks the lane with the
lowest clock, breaking ties by lane id, and completion order is the
merged event order ``(finish, lane_id, seq)`` — so scheduling decisions
depend only on the dispatch sequence, never on host concurrency, and
any lane count replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class SchedConfig:
    """Tunables for the concurrency scheduler (node-level)."""

    #: Parallel execution lanes for block processing.  1 = serial
    #: (legacy behaviour); any value yields byte-identical commitments.
    lanes: int = 4
    #: Admission: hard cap on speculation jobs dispatched per head.
    #: Generous by default (the per-tx context caps bind first in the
    #: simulated workloads) but a real bound under tx floods.
    max_jobs_per_head: int = 4096
    #: Admission: max requests dispatched in one speculation cycle;
    #: overflow is deferred (up to ``defer_capacity``), then dropped.
    queue_capacity: int = 1024
    #: Admission: bounded carry-over queue between cycles.
    defer_capacity: int = 2048
    #: Backpressure: defer dispatch once the least-loaded worker lane
    #: is backlogged further than this many simulated seconds.
    max_lane_backlog_seconds: float = 120.0
    #: Bounded prefetch request queue (satellite: prefetch can no
    #: longer grow unboundedly ahead of the speculator).
    prefetch_queue_capacity: int = 4096
    #: Max prefetch requests drained per speculation cycle
    #: (None = drain everything queued).
    prefetch_drain_per_cycle: Optional[int] = None


@dataclass
class Lane:
    """One virtual worker: a logical clock plus utilization counters."""

    lane_id: int
    clock: float = 0.0
    busy: float = 0.0
    jobs: int = 0

    def advance(self, start: float, cost: float) -> float:
        """Run one job of ``cost`` at ``start``; returns the finish."""
        finish = start + cost
        self.clock = finish
        self.busy += cost
        self.jobs += 1
        return finish


@dataclass
class Completion:
    """One finished job in merged (deterministic) completion order."""

    seq: int
    lane_id: int
    start: float
    finish: float
    cost: float
    payload: object = None


class LaneSet:
    """N deterministic lanes merged by (clock, lane id).

    The same selection rule the legacy scalar worker pool used —
    ``min(availability, index)`` — generalized and shared by the
    speculation worker pool (float seconds) and the parallel block
    executor (integer cost units).
    """

    def __init__(self, count: int, start: float = 0.0) -> None:
        if count < 1:
            raise ValueError("a LaneSet needs at least one lane")
        self.lanes: List[Lane] = [Lane(i, clock=start) for i in range(count)]
        self._origin = start
        self._seq = 0
        self.completions: List[Completion] = []

    def __len__(self) -> int:
        return len(self.lanes)

    # -- deterministic selection ----------------------------------------

    def least_loaded(self) -> Lane:
        """Lane with the lowest clock; ties break by lane id."""
        return min(self.lanes, key=lambda lane: (lane.clock, lane.lane_id))

    def dispatch(self, cost: float, not_before: float = 0.0,
                 payload: object = None) -> Completion:
        """Assign one job to the least-loaded lane.

        The job starts at ``max(not_before, lane.clock)`` — exactly the
        legacy worker-pool rule — and the completion record is appended
        in dispatch order (replaying dispatches replays completions).
        """
        lane = self.least_loaded()
        start = max(not_before, lane.clock)
        finish = lane.advance(start, cost)
        completion = Completion(seq=self._seq, lane_id=lane.lane_id,
                                start=start, finish=finish, cost=cost,
                                payload=payload)
        self._seq += 1
        self.completions.append(completion)
        return completion

    # -- merged event order ---------------------------------------------

    def merged_completions(self) -> List[Completion]:
        """Completions in the deterministic merged event order
        ``(finish, lane_id, seq)`` — the scheduler's "event loop"."""
        return sorted(self.completions,
                      key=lambda c: (c.finish, c.lane_id, c.seq))

    # -- aggregate views -------------------------------------------------

    @property
    def clocks(self) -> List[float]:
        return [lane.clock for lane in self.lanes]

    def makespan(self) -> float:
        """Span from the origin to the last lane's clock."""
        return max(lane.clock for lane in self.lanes) - self._origin

    def busy_total(self) -> float:
        return sum(lane.busy for lane in self.lanes)

    def utilization_permille(self) -> int:
        """Aggregate busy / (lanes × makespan), in permille (int: safe
        for deterministic metric snapshots)."""
        span = self.makespan()
        if span <= 0:
            return 0
        capacity = span * len(self.lanes)
        return int(round(1000 * self.busy_total() / capacity))

    def lane_utilization_permille(self) -> List[int]:
        span = self.makespan()
        if span <= 0:
            return [0] * len(self.lanes)
        return [int(round(1000 * lane.busy / span)) for lane in self.lanes]

    def snapshot(self) -> List[Tuple[int, float, int]]:
        """Deterministic (lane_id, clock, jobs) view for reports."""
        return [(lane.lane_id, lane.clock, lane.jobs)
                for lane in self.lanes]
