"""Execution witnesses + differential conformance (ROADMAP item 4).

A witness is a per-transaction, independently checkable record of what
an execution did: every touched account/slot with pre/post values, the
constraint checks the fast path performed, gas and cost accounting,
and digests of the logs and return data — in the zkEVM-constraint
style (*Constraint-Level Design of zkEVMs*, PAPERS.md).

:mod:`repro.witness.recorder` is the shared recording hook: the plain
interpreter feeds it through the :class:`repro.evm.tracing.Tracer`
protocol, the AP tiers (interpreted walk and JIT closures) feed it
their observed read sets, and both share the StateDB journal for the
state delta.  :mod:`repro.witness.checker` validates a speculative
result from its witness *without re-execution* — constraint replay
plus delta application, at a small fraction of the original cost
units.  :mod:`repro.witness.oracle` drives seeded programs through
the interpreted walk, the JIT closure tier, and the witness checker
and reports any three-way divergence as a byte-stable artifact.
"""

from repro.witness.archive import (
    ArchiveStats,
    archive_witnesses,
    encode_block,
    unarchive_block,
)
from repro.witness.checker import (
    CheckFailure,
    RunValidation,
    WitnessChecker,
)
from repro.witness.format import (
    WITNESS_VERSION,
    ExecutionWitness,
    logs_digest,
    witness_digest,
    witness_from_dict,
    witness_to_dict,
)
from repro.witness.oracle import OracleReport, run_oracle
from repro.witness.recorder import ReadSetRecorder, build_witness

__all__ = [
    "ArchiveStats",
    "CheckFailure",
    "ExecutionWitness",
    "OracleReport",
    "ReadSetRecorder",
    "RunValidation",
    "WITNESS_VERSION",
    "WitnessChecker",
    "archive_witnesses",
    "build_witness",
    "encode_block",
    "logs_digest",
    "run_oracle",
    "unarchive_block",
    "witness_digest",
    "witness_from_dict",
    "witness_to_dict",
]
