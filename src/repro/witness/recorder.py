"""The shared witness recording hook.

All three execution tiers feed the same recorder:

* the **plain interpreter** drives it through the
  :class:`repro.evm.tracing.Tracer` protocol — the recorder overrides
  only the context hooks, so the interpreter keeps its fast step
  dispatch (see ``EVM.__init__``);
* the **AP tiers** (interpreted walk and JIT closures) hand over the
  ``observed_reads`` their execution collected anyway — zero extra
  work on the fast path;
* the **state delta** comes from the StateDB journal for every tier
  (:meth:`repro.state.statedb.StateDB.witness_deltas`), so witness
  emission never adds a single state read to the critical path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.evm.tracing import Tracer
from repro.witness.format import ExecutionWitness


class ReadSetRecorder(Tracer):
    """Tracer that collects the interpreter's context read set.

    Overrides *only* the context hooks — never ``on_step`` — which
    keeps the interpreter's fast-emit dispatch active: recording a
    witness costs one dict probe per context read, nothing per
    instruction.  First read wins (``setdefault``), matching the
    read-set convention of :mod:`repro.core.trace` and the AP walker.
    """

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Dict[tuple, int] = {}
        self.writes: int = 0

    def on_context_read(self, kind: str, key: tuple, value: int) -> None:
        self.reads.setdefault((kind, key), value)

    def on_state_write(self, kind: str, key: tuple, value: Any) -> None:
        self.writes += 1


def build_witness(*, tx_hash: int, block_number: int, receipt,
                  span_delta: dict, logs,
                  context_ids=()) -> ExecutionWitness:
    """Assemble one transaction's witness.

    ``receipt`` is an :class:`repro.core.accelerator.AcceleratedReceipt`
    carrying tier/observed-read telemetry; ``span_delta`` is one entry
    of :meth:`StateDB.witness_deltas` for this transaction's journal
    span; ``logs`` is the master log-list slice of the same span (one
    source for all tiers).
    """
    stats = receipt.ap_stats
    return ExecutionWitness.assemble(
        tx_hash=tx_hash,
        block_number=block_number,
        tier=receipt.tier,
        outcome=receipt.outcome,
        success=receipt.result.success,
        gas_used=receipt.result.gas_used,
        cost_units=receipt.tally.total,
        observed_reads=receipt.observed_reads,
        delta=span_delta["delta"],
        created=span_delta["created"],
        guards_checked=stats.guards_checked if stats is not None else 0,
        logs=logs,
        return_data=receipt.result.return_data,
        context_ids=context_ids,
    )


def ap_context_ids(ap) -> Tuple[int, ...]:
    """Speculated context ids of the AP a receipt ran (if any)."""
    if ap is None:
        return ()
    return tuple(sorted(ap.context_ids))


def receipt_tier(receipt) -> Optional[str]:
    return getattr(receipt, "tier", None)
