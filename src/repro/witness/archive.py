"""Witness-stream archival compression.

A verified run keeps every transaction's witness; archived cold, the
stream dominates storage.  The archive format exploits the two big
redundancies a per-block witness batch carries:

* **shared keys** — hot accounts and slots appear in many witnesses'
  constraint and delta rows within one block.  The batch builds one
  sorted ``[kind, key]`` dictionary and rows reference dictionary
  indices;
* **shared fields** — ``v`` and ``block`` repeat per line in the JSONL
  form; the batch hoists them into a single header.

The delta-encoded batch is rendered through
:func:`repro.obs.export.canonical_json` (so the *pre-compression*
bytes are already canonical and byte-stable) and then deflated with
:mod:`zlib` at maximum level.  Decoding inverts every step exactly:
:func:`unarchive_block` returns witnesses whose
:func:`~repro.witness.format.witness_digest` equals the originals' —
the archival round-trip is lossless by digest, not just by eyeball.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.obs.export import canonical_json

from .format import (
    WITNESS_VERSION,
    ExecutionWitness,
    witness_from_dict,
    witness_to_dict,
)

#: Archive container version (independent of the witness version).
ARCHIVE_VERSION = 1

#: zlib level for the final deflate pass.
COMPRESSION_LEVEL = 9


def _batch_key_table(dicts: List[dict]) -> List[list]:
    """The sorted ``[kind, key]`` dictionary for one block batch."""
    keys = set()
    for data in dicts:
        for kind, key, _value in data["constraints"]:
            keys.add((kind, tuple(key)))
        for kind, key, _pre, _post in data["delta"]:
            keys.add((kind, tuple(key)))
    return [[kind, list(key)] for kind, key in sorted(keys)]


def encode_block(witnesses: Iterable[ExecutionWitness]) -> bytes:
    """Delta-encode and deflate one block's witness batch."""
    dicts = [witness_to_dict(w) for w in witnesses]
    if not dicts:
        payload = canonical_json({"av": ARCHIVE_VERSION, "v": WITNESS_VERSION,
                                  "block": None, "keys": [], "txs": []})
        return zlib.compress(payload.encode("ascii"), COMPRESSION_LEVEL)
    blocks = {data["block"] for data in dicts}
    if len(blocks) != 1:
        raise ValueError(f"one batch per block, got blocks {sorted(blocks)}")
    table = _batch_key_table(dicts)
    index: Dict[Tuple[str, tuple], int] = {
        (kind, tuple(key)): i for i, (kind, key) in enumerate(table)}
    rows = []
    for data in dicts:
        rows.append({
            "tx_hash": data["tx_hash"],
            "tier": data["tier"],
            "outcome": data["outcome"],
            "success": data["success"],
            "gas_used": data["gas_used"],
            "cost_units": data["cost_units"],
            "constraints": [[index[(kind, tuple(key))], value]
                            for kind, key, value in data["constraints"]],
            "delta": [[index[(kind, tuple(key))], pre, post]
                      for kind, key, pre, post in data["delta"]],
            "created": data["created"],
            "guards_checked": data["guards_checked"],
            "logs_count": data["logs_count"],
            "logs_sha256": data["logs_sha256"],
            "return_sha256": data["return_sha256"],
            "context_ids": data["context_ids"],
        })
    payload = canonical_json({
        "av": ARCHIVE_VERSION,
        "v": WITNESS_VERSION,
        "block": dicts[0]["block"],
        "keys": table,
        "txs": rows,
    })
    return zlib.compress(payload.encode("ascii"), COMPRESSION_LEVEL)


def unarchive_block(blob: bytes) -> List[ExecutionWitness]:
    """Inverse of :func:`encode_block` (lossless by witness digest)."""
    import json

    batch = json.loads(zlib.decompress(blob).decode("ascii"))
    if batch.get("av") != ARCHIVE_VERSION:
        raise ValueError(f"unsupported archive version {batch.get('av')!r}")
    table = batch["keys"]
    witnesses = []
    for row in batch["txs"]:
        data = {
            "v": batch["v"],
            "block": batch["block"],
            "tx_hash": row["tx_hash"],
            "tier": row["tier"],
            "outcome": row["outcome"],
            "success": row["success"],
            "gas_used": row["gas_used"],
            "cost_units": row["cost_units"],
            "constraints": [
                [table[i][0], list(table[i][1]), value]
                for i, value in row["constraints"]],
            "delta": [
                [table[i][0], list(table[i][1]), pre, post]
                for i, pre, post in row["delta"]],
            "created": row["created"],
            "guards_checked": row["guards_checked"],
            "logs_count": row["logs_count"],
            "logs_sha256": row["logs_sha256"],
            "return_sha256": row["return_sha256"],
            "context_ids": row["context_ids"],
        }
        witnesses.append(witness_from_dict(data))
    return witnesses


@dataclass
class ArchiveStats:
    """Size accounting for one archived witness stream."""

    blocks: int = 0
    witnesses: int = 0
    #: Canonical JSONL bytes the raw stream would occupy.
    raw_bytes: int = 0
    compressed_bytes: int = 0
    blobs: List[bytes] = field(default_factory=list)

    def ratio(self) -> float:
        """Compressed fraction of the raw stream (lower is better)."""
        if not self.raw_bytes:
            return 1.0
        return self.compressed_bytes / self.raw_bytes

    def as_dict(self) -> dict:
        return {
            "blocks": self.blocks,
            "witnesses": self.witnesses,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "ratio": round(self.ratio(), 4),
        }


def archive_witnesses(witnesses: Iterable[ExecutionWitness]
                      ) -> ArchiveStats:
    """Archive a whole run's witness stream in per-block batches."""
    by_block: Dict[int, List[ExecutionWitness]] = {}
    for witness in witnesses:
        by_block.setdefault(witness.block_number, []).append(witness)
    stats = ArchiveStats()
    for block_number in sorted(by_block):
        batch = by_block[block_number]
        raw = sum(len(canonical_json(witness_to_dict(w))) + 1
                  for w in batch)
        blob = encode_block(batch)
        stats.blocks += 1
        stats.witnesses += len(batch)
        stats.raw_bytes += raw
        stats.compressed_bytes += len(blob)
        stats.blobs.append(blob)
    return stats
