"""WitnessChecker: validate speculative results without re-execution.

Forerunner's bet is that a constraint check is vastly cheaper than
re-execution; the checker is that bet made independently verifiable.
Given the stream of per-transaction witnesses and the block headers, a
client that trusts *nothing else* can reconstruct the entire chain
state by, per transaction:

1. **constraint replay** — probe its own state view for every
   recorded constraint and compare against the witnessed value;
2. **delta verification** — check each delta's pre-value against the
   view, then apply the post-value;

and, per block, compare its reconstructed Merkle root against the
committed one.  No EVM instruction is interpreted, no AP is walked:
the work is dict probes and compares, charged at
:func:`repro.core.costmodel.witness_check_cost` — a small fraction of
any execution tier's cost units (the ``repro verify`` report and
``BENCH_witness.json`` quantify the ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import costmodel
from repro.state.account import Account
from repro.state.world import WorldState
from repro.witness.format import ExecutionWitness, decode_value


@dataclass
class CheckFailure:
    """One mismatch between a witness and the shadow state."""

    tx_hash: int
    stage: str          # "constraint" | "delta-pre" | "created-pre" | "root"
    kind: str
    key: list
    expected: object
    actual: object

    def as_dict(self) -> dict:
        def enc(value):
            return value.hex() if isinstance(value, bytes) else value
        return {
            "tx_hash": self.tx_hash,
            "stage": self.stage,
            "kind": self.kind,
            "key": self.key,
            "expected": enc(self.expected),
            "actual": enc(self.actual),
        }


@dataclass
class RunValidation:
    """Aggregate result of validating one replay's witness stream."""

    witnesses: int = 0
    constraints_checked: int = 0
    deltas_applied: int = 0
    blocks_checked: int = 0
    roots_matched: int = 0
    checker_cost_units: int = 0
    original_cost_units: int = 0
    #: Satisfied (speculative fast path) slice: the acceptance
    #: criterion's <= 20% bound is judged on these.
    speculative_witnesses: int = 0
    speculative_checker_cost: int = 0
    speculative_original_cost: int = 0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.failures
                and self.roots_matched == self.blocks_checked)

    def cost_ratio(self) -> float:
        if not self.original_cost_units:
            return 0.0
        return self.checker_cost_units / self.original_cost_units

    def speculative_cost_ratio(self) -> float:
        if not self.speculative_original_cost:
            return 0.0
        return (self.speculative_checker_cost
                / self.speculative_original_cost)

    def as_dict(self) -> dict:
        return {
            "witnesses": self.witnesses,
            "constraints_checked": self.constraints_checked,
            "deltas_applied": self.deltas_applied,
            "blocks_checked": self.blocks_checked,
            "roots_matched": self.roots_matched,
            "checker_cost_units": self.checker_cost_units,
            "original_cost_units": self.original_cost_units,
            "cost_ratio_permille": int(self.cost_ratio() * 1000),
            "speculative": {
                "witnesses": self.speculative_witnesses,
                "checker_cost_units": self.speculative_checker_cost,
                "original_cost_units": self.speculative_original_cost,
                "cost_ratio_permille": int(
                    self.speculative_cost_ratio() * 1000),
            },
            "failures": [f.as_dict() for f in self.failures],
            "ok": self.ok,
        }


class WitnessChecker:
    """Replays constraints and applies deltas against a shadow world.

    The shadow is a plain :class:`WorldState` mutated directly — no
    disk model, no journal — because the checker *is* the cost story:
    everything it does is accounted through ``witness_check_cost``.
    """

    def __init__(self, world: WorldState,
                 blockhash_fn: Optional[Callable[[int], int]] = None
                 ) -> None:
        self.world = world
        self.blockhash_fn = blockhash_fn or (lambda n: 0)

    # -- shadow reads -----------------------------------------------------

    def _read(self, kind: str, key: tuple, header) -> object:
        if kind == "storage":
            account = self.world.get_account(key[0])
            return account.get_storage(key[1]) if account else 0
        if kind == "balance":
            account = self.world.get_account(key[0])
            return account.balance if account else 0
        if kind == "nonce":
            account = self.world.get_account(key[0])
            return account.nonce if account else 0
        if kind == "code":
            account = self.world.get_account(key[0])
            return account.code if account else b""
        if kind == "extcodesize":
            account = self.world.get_account(key[0])
            return len(account.code) if account else 0
        if kind == "header":
            return getattr(header, key[0])
        if kind == "blockhash":
            return self.blockhash_fn(key[0])
        return None

    def _dirty_account(self, dirty: Dict[int, Account],
                       address: int) -> Account:
        account = dirty.get(address)
        if account is None:
            committed = self.world.get_account(address)
            account = committed.copy() if committed else Account()
            dirty[address] = account
        return account

    def _apply(self, dirty: Dict[int, Account], kind: str, key: tuple,
               value: object) -> None:
        account = self._dirty_account(dirty, key[0])
        if kind == "storage":
            account.set_storage(key[1], value)
        elif kind == "balance":
            account.balance = value
        elif kind == "nonce":
            account.nonce = value
        elif kind == "code":
            account.code = value

    # -- per-transaction validation ---------------------------------------

    def check_transaction(self, witness: ExecutionWitness, header
                          ) -> Tuple[int, List[CheckFailure]]:
        """Replay one witness: constraints, delta pre-check, apply.

        Returns ``(cost_units, failures)``.  The shadow world advances
        by the witnessed delta regardless of failures, so one bad
        transaction surfaces both itself and the block-root mismatch.
        """
        failures: List[CheckFailure] = []
        dirty: Dict[int, Account] = {}
        for kind, key, expected in witness.constraints:
            actual = self._read(kind, tuple(key), header)
            if actual != expected:
                failures.append(CheckFailure(
                    witness.tx_hash, "constraint", kind, key,
                    expected, actual))
        for address, pre_desc in witness.created:
            account = self.world.get_account(address)
            actual = (None if account is None else
                      [account.balance, account.nonce,
                       account.code.hex()])
            if actual != pre_desc:
                failures.append(CheckFailure(
                    witness.tx_hash, "created-pre", "account",
                    [address], pre_desc, actual))
            dirty[address] = Account()
        for kind, key, pre, post in witness.delta:
            pre = decode_value(pre)
            post = decode_value(post)
            if pre is not None:
                actual = self._read(kind, tuple(key), header)
                if actual != pre:
                    failures.append(CheckFailure(
                        witness.tx_hash, "delta-pre", kind, key,
                        pre, actual))
            self._apply(dirty, kind, tuple(key), post)
        # Writes land through ``apply`` (fresh Account copies) so the
        # world's incremental leaf cache stays sound for root().
        self.world.apply(dirty)
        cost = costmodel.witness_check_cost(
            len(witness.constraints),
            len(witness.delta) + len(witness.created))
        return cost, failures

    # -- whole-run validation ---------------------------------------------

    def validate_run(self, blocks) -> RunValidation:
        """Validate a replay's witness stream block by block.

        ``blocks`` is an iterable of ``(header, witnesses,
        committed_root)`` triples in chain order.  After applying each
        block's deltas the shadow root must equal the committed root —
        that closes the loop: every accepted speculative result is
        re-derived from constraint replay + delta application alone.
        """
        report = RunValidation()
        for header, witnesses, committed_root in blocks:
            for witness in witnesses:
                cost, failures = self.check_transaction(witness, header)
                report.witnesses += 1
                report.constraints_checked += len(witness.constraints)
                report.deltas_applied += (len(witness.delta)
                                          + len(witness.created))
                report.checker_cost_units += cost
                report.original_cost_units += witness.cost_units
                report.failures.extend(failures)
                if witness.outcome == "satisfied":
                    report.speculative_witnesses += 1
                    report.speculative_checker_cost += cost
                    report.speculative_original_cost += \
                        witness.cost_units
            report.blocks_checked += 1
            shadow_root = self.world.root()
            if shadow_root == committed_root:
                report.roots_matched += 1
            else:
                report.failures.append(CheckFailure(
                    0, "root", "block", [header.number],
                    committed_root, shadow_root))
        return report
