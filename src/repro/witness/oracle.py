"""Differential conformance oracle over the execution tiers.

The oracle generates seeded random S-EVM programs — storage reads,
compute chains over edge-biased operands, guards, buffered writes, and
return-piece layouts — and drives each one through every tier that
claims to compute the same function:

* the **interpreted AP walk** (:func:`repro.core.ap_exec.execute_ap`);
* the **JIT closure tier** (:func:`repro.evm.jit.specialize.compile_ap`);
* the **witness checker** (constraint replay + delta application on a
  shadow world, root-compared against the walk's commit);
* for single-op constant cases, the **plain EVM interpreter** running
  assembled bytecode;

and compares everything against an *independent* reference semantics
table written directly from the Yellow-Paper rules (two's-complement
division/modulo, shift saturation, byte indexing) — deliberately not
shared with ``COMPUTE_SEMANTICS``, so a wrong shared helper cannot
vouch for itself.  Guard expectations are the reference values, which
turns every semantic divergence into a loud ``ConstraintViolation``
rather than a silently wrong word.

Divergences are reported as canonical, byte-stable artifacts: the same
seed always regenerates the same programs, so two runs produce
byte-identical reports (the CI ``conformance`` job diffs them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.ap import AcceleratedProgram, Terminal, build_chain
from repro.core.costmodel import CostTally
from repro.core.sevm import GuardMode, Reg, SInstr, SKind
from repro.core.ap_exec import execute_ap, materialize_return
from repro.errors import ConstraintViolation
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.evm.jit.specialize import SpecializeAbort, compile_ap
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.witness.checker import WitnessChecker
from repro.witness.format import ExecutionWitness

_M = 1 << 256
_SENDER = 0xA11CE
_CONTRACT = 0xC0DE


# ---------------------------------------------------------------------------
# Independent reference semantics (Yellow Paper rules, written from the
# spec — NOT from repro.evm.interpreter.COMPUTE_SEMANTICS).
# ---------------------------------------------------------------------------

def _signed(x: int) -> int:
    return x - _M if x >> 255 else x


def _unsigned(x: int) -> int:
    return x % _M


def _ref_sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    sa, sb = _signed(a), _signed(b)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _unsigned(quotient)


def _ref_smod(a: int, b: int) -> int:
    if b == 0:
        return 0
    sa, sb = _signed(a), _signed(b)
    remainder = abs(sa) % abs(sb)
    return _unsigned(-remainder if sa < 0 else remainder)


def _ref_signextend(a: int, b: int) -> int:
    if a >= 31:
        return b
    bits = 8 * a + 8
    mask = (1 << bits) - 1
    if (b >> (bits - 1)) & 1:
        return _unsigned(b | ~mask)
    return b & mask


def _ref_byte(a: int, b: int) -> int:
    if a >= 32:
        return 0
    return (b >> (8 * (31 - a))) & 0xFF


def _ref_sar(a: int, b: int) -> int:
    sb = _signed(b)
    if a >= 256:
        return 0 if sb >= 0 else _M - 1
    return _unsigned(sb >> a)


#: op name -> (arity, reference function).
REFERENCE_SEMANTICS = {
    "ADD": (2, lambda a, b: (a + b) % _M),
    "MUL": (2, lambda a, b: (a * b) % _M),
    "SUB": (2, lambda a, b: (a - b) % _M),
    "DIV": (2, lambda a, b: 0 if b == 0 else a // b),
    "SDIV": (2, _ref_sdiv),
    "MOD": (2, lambda a, b: 0 if b == 0 else a % b),
    "SMOD": (2, _ref_smod),
    "ADDMOD": (3, lambda a, b, c: (a + b) % c if c else 0),
    "MULMOD": (3, lambda a, b, c: (a * b) % c if c else 0),
    "EXP": (2, lambda a, b: pow(a, b, _M)),
    "SIGNEXTEND": (2, _ref_signextend),
    "LT": (2, lambda a, b: int(a < b)),
    "GT": (2, lambda a, b: int(a > b)),
    "SLT": (2, lambda a, b: int(_signed(a) < _signed(b))),
    "SGT": (2, lambda a, b: int(_signed(a) > _signed(b))),
    "EQ": (2, lambda a, b: int(a == b)),
    "ISZERO": (1, lambda a: int(a == 0)),
    "AND": (2, lambda a, b: a & b),
    "OR": (2, lambda a, b: a | b),
    "XOR": (2, lambda a, b: a ^ b),
    "NOT": (1, lambda a: (~a) % _M),
    "BYTE": (2, _ref_byte),
    "SHL": (2, lambda a, b: (b << a) % _M if a < 256 else 0),
    "SHR": (2, lambda a, b: b >> a if a < 256 else 0),
    "SAR": (2, _ref_sar),
}

ARITHMETIC_OPS = ["ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD",
                  "ADDMOD", "MULMOD", "EXP", "SIGNEXTEND"]
COMPARISON_OPS = ["LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND", "OR",
                  "XOR", "NOT", "BYTE", "SHL", "SHR", "SAR"]

CATEGORIES = ("arithmetic", "comparison", "memory", "storage")

#: Operand pool biased toward the boundaries where signed/shift/index
#: semantics change behaviour (the satellite edge cases live here).
EDGE_WORDS = [
    0, 1, 2, 3, 31, 32, 33, 63, 64, 127, 128, 255, 256, 257,
    (1 << 8) - 1, (1 << 64) - 1, 1 << 128,
    (1 << 255) - 1, 1 << 255, (1 << 255) + 1,   # INT_MAX / INT_MIN band
    _M - 1, _M - 2,                             # -1, -2
]

#: Directed cases pinning the satellite-1 audit list; every run starts
#: with these regardless of seed.
DIRECTED_CASES = [
    ("SDIV", (1 << 255, _M - 1)),       # INT_MIN / -1 overflow
    ("SDIV", (_M - 7, 2)),              # -7 / 2 truncates toward zero
    ("SMOD", (_M - 7, 5)),              # sign follows dividend
    ("SMOD", (7, _M - 5)),
    ("SAR", (256, _M - 1)),             # shift >= 256 saturates
    ("SAR", (300, 1 << 255)),
    ("SIGNEXTEND", (31, _M - 1)),       # byte index >= 31 is identity
    ("SIGNEXTEND", (32, 0x80)),
    ("BYTE", (32, _M - 1)),             # index >= 32 reads as zero
    ("EXP", (0, 0)),                    # 0 ** 0 == 1
    ("EXP", (7, 0)),                    # exponent 0 == 1
]


# ---------------------------------------------------------------------------
# Case model
# ---------------------------------------------------------------------------

@dataclass
class OracleCase:
    """One generated program plus its reference outcome."""

    case_id: int
    category: str
    storage_pre: Dict[int, int]
    instrs: List[SInstr]
    return_pieces: List[Tuple[int, tuple]]
    return_size: int
    expected_return: bytes
    expected_storage: Dict[int, int]
    #: (op, operands) when the case is a single constant-operand
    #: compute that can also run as assembled EVM bytecode.
    evm_check: Optional[Tuple[str, Tuple[int, ...]]] = None

    def describe(self) -> dict:
        return {
            "case": self.case_id,
            "category": self.category,
            "storage_pre": {str(k): v
                            for k, v in sorted(self.storage_pre.items())},
            "program": [repr(i) for i in self.instrs],
            "pieces": [[off, _piece_desc(piece)]
                       for off, piece in self.return_pieces],
            "return_size": self.return_size,
        }


def _piece_desc(piece: tuple) -> list:
    if piece[0] == "bytes":
        return ["bytes", piece[1].hex()]
    if piece[0] == "reg":
        return ["reg", int(piece[1]), piece[2], piece[3]]
    return [piece[0]]


@dataclass
class OracleReport:
    """Outcome of one oracle sweep (canonical via :meth:`as_dict`)."""

    seed: int
    cases: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    jit_compiled: int = 0
    jit_aborts: int = 0
    evm_cross_checks: int = 0
    witness_checks: int = 0
    divergences: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "by_category": dict(sorted(self.by_category.items())),
            "jit_compiled": self.jit_compiled,
            "jit_aborts": self.jit_aborts,
            "evm_cross_checks": self.evm_cross_checks,
            "witness_checks": self.witness_checks,
            "divergences": self.divergences,
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# Program generation
# ---------------------------------------------------------------------------

def _word(rng: random.Random) -> int:
    if rng.random() < 0.65:
        return rng.choice(EDGE_WORDS)
    return rng.getrandbits(256)


class _CaseBuilder:
    """Accumulates an S-EVM program while tracking reference values."""

    def __init__(self, storage_pre: Dict[int, int]) -> None:
        self.storage_pre = storage_pre
        self.instrs: List[SInstr] = []
        self.values: Dict[Reg, int] = {}
        self._next = 0

    def _reg(self) -> Reg:
        reg = Reg(self._next)
        self._next += 1
        return reg

    def read_slot(self, slot: int) -> Reg:
        dest = self._reg()
        self.instrs.append(SInstr(SKind.READ, "SLOAD", dest=dest,
                                  args=(slot,), key=(_CONTRACT,)))
        self.values[dest] = self.storage_pre.get(slot, 0)
        return dest

    def compute(self, op: str, args: tuple) -> Reg:
        dest = self._reg()
        self.instrs.append(SInstr(SKind.COMPUTE, op, dest=dest,
                                  args=args))
        arity, fn = REFERENCE_SEMANTICS[op]
        concrete = tuple(self.values[a] if isinstance(a, Reg) else a
                         for a in args)
        assert len(concrete) == arity
        self.values[dest] = fn(*concrete)
        return dest

    def guard_eq(self, reg: Reg) -> None:
        self.instrs.append(SInstr(
            SKind.GUARD, "GUARD", args=(reg,),
            guard_mode=GuardMode.EQ, expected=self.values[reg],
            is_control=False))

    def sstore(self, slot: int, operand) -> None:
        self.instrs.append(SInstr(SKind.WRITE, "SSTORE",
                                  args=(slot, operand), key=(_CONTRACT,)))

    def value_of(self, operand) -> int:
        return (self.values[operand] if isinstance(operand, Reg)
                else operand)


def _random_operand(rng: random.Random, builder: _CaseBuilder,
                    reg_pool: List[Reg]) -> object:
    if reg_pool and rng.random() < 0.4:
        return rng.choice(reg_pool)
    return _word(rng)


def _finish_case(case_id: int, category: str, builder: _CaseBuilder,
                 result_reg: Reg, pieces, size: int,
                 writes: Dict[int, object],
                 evm_check=None) -> OracleCase:
    expected_storage = dict(builder.storage_pre)
    for slot, operand in writes.items():
        expected_storage[slot] = builder.value_of(operand)
    expected_return = materialize_return(pieces, size, builder.values)
    return OracleCase(
        case_id=case_id,
        category=category,
        storage_pre=builder.storage_pre,
        instrs=builder.instrs,
        return_pieces=pieces,
        return_size=size,
        expected_return=expected_return,
        expected_storage=expected_storage,
        evm_check=evm_check,
    )


def _gen_compute_case(rng: random.Random, case_id: int, category: str,
                      ops: List[str],
                      directed: Optional[tuple] = None) -> OracleCase:
    """Arithmetic/comparison case: compute chain, guard, store, return."""
    storage_pre = {0: _word(rng), 1: _word(rng)}
    builder = _CaseBuilder(storage_pre)
    reg_pool: List[Reg] = []

    if directed is not None:
        op, operands = directed
        chain_len = 1
    else:
        op, operands = None, None
        chain_len = rng.randint(1, 3)
        if rng.random() < 0.5:
            reg_pool.append(builder.read_slot(0))

    last = None
    first_args: Tuple[int, ...] = ()
    for position in range(chain_len):
        chosen = op if op is not None else rng.choice(ops)
        arity = REFERENCE_SEMANTICS[chosen][0]
        if operands is not None:
            args = operands
        else:
            args = tuple(_random_operand(rng, builder, reg_pool)
                         for _ in range(arity))
        if position == 0:
            first_args = tuple(builder.value_of(a) for a in args)
        last = builder.compute(chosen, args)
        reg_pool.append(last)

    builder.guard_eq(last)
    builder.sstore(7, last)

    evm_check = None
    single_const = (chain_len == 1
                    and all(not isinstance(a, Reg) for a in args))
    if single_const:
        evm_check = (chosen, first_args)

    pieces = [(0, ("reg", last, 0, 32))]
    return _finish_case(case_id, category, builder, last, pieces, 32,
                        {7: last}, evm_check)


def _gen_memory_case(rng: random.Random, case_id: int) -> OracleCase:
    """Return-piece layout case: overlapping const/reg/folded pieces."""
    storage_pre = {0: _word(rng)}
    builder = _CaseBuilder(storage_pre)
    live = builder.read_slot(0)                     # runtime-only value
    folded = builder.compute(rng.choice(["ADD", "XOR", "MUL"]),
                             (_word(rng), _word(rng)))  # constant-foldable
    builder.guard_eq(live)

    size = rng.choice([48, 64])
    pieces: List[Tuple[int, tuple]] = []
    for _ in range(rng.randint(2, 4)):
        offset = rng.randrange(0, size - 8)
        roll = rng.random()
        if roll < 0.40:
            reg = live if rng.random() < 0.5 else folded
            src_start = rng.choice([0, 0, 8, 16])
            length = min(32 - src_start, size - offset)
            pieces.append((offset, ("reg", reg, src_start, length)))
        elif roll < 0.80:
            length = min(rng.choice([4, 8, 16, 32]), size - offset)
            payload = bytes(rng.randrange(256) for _ in range(length))
            pieces.append((offset, ("bytes", payload)))
        else:
            pieces.append((offset, ("zero",)))

    builder.sstore(3, live)
    return _finish_case(case_id, "memory", builder, live, pieces, size,
                        {3: live})


def _gen_storage_case(rng: random.Random, case_id: int) -> OracleCase:
    """Read/guard/overwrite case exercising net-delta reconstruction."""
    storage_pre = {0: _word(rng), 1: _word(rng), 2: _word(rng)}
    builder = _CaseBuilder(storage_pre)
    r0 = builder.read_slot(0)
    r1 = builder.read_slot(1)
    op = rng.choice(ARITHMETIC_OPS)
    arity = REFERENCE_SEMANTICS[op][0]
    args = (r0, r1, _word(rng))[:arity] if arity == 3 else (r0, r1)
    if arity == 1:
        args = (r0,)
    result = builder.compute(op, args)
    builder.guard_eq(result)

    writes: Dict[int, object] = {}
    target = rng.choice([2, 5])
    builder.sstore(target, result)
    writes[target] = result
    if rng.random() < 0.5:
        # Overwrite the same slot: the witness delta must record only
        # the net (pre, final) pair.
        builder.sstore(target, r0)
        writes[target] = r0
    if rng.random() < 0.3:
        # Write-back of the read value: no net change, no delta row.
        builder.sstore(0, r0)
        writes[0] = r0

    pieces = [(0, ("reg", result, 0, 32))]
    return _finish_case(case_id, "storage", builder, result, pieces, 32,
                        writes)


def generate_case(rng: random.Random, case_id: int,
                  directed: Optional[tuple] = None) -> OracleCase:
    if directed is not None:
        op = directed[0]
        category = ("arithmetic" if op in ARITHMETIC_OPS
                    else "comparison")
        ops = ARITHMETIC_OPS if op in ARITHMETIC_OPS else COMPARISON_OPS
        return _gen_compute_case(rng, case_id, category, ops, directed)
    category = CATEGORIES[case_id % len(CATEGORIES)]
    if category == "arithmetic":
        return _gen_compute_case(rng, case_id, category, ARITHMETIC_OPS)
    if category == "comparison":
        return _gen_compute_case(rng, case_id, category, COMPARISON_OPS)
    if category == "memory":
        return _gen_memory_case(rng, case_id)
    return _gen_storage_case(rng, case_id)


# ---------------------------------------------------------------------------
# Execution + comparison
# ---------------------------------------------------------------------------

def _base_world(case: OracleCase) -> WorldState:
    world = WorldState()
    world.create_account(_SENDER, balance=10 ** 24)
    contract = world.create_account(_CONTRACT)
    for slot, value in case.storage_pre.items():
        contract.set_storage(slot, value)
    return world


def _build_ap(case: OracleCase) -> AcceleratedProgram:
    terminal = Terminal(path_ids=[case.case_id], success=True,
                        gas_used=30_000,
                        return_pieces=case.return_pieces,
                        return_size=case.return_size, read_set={})
    ap = AcceleratedProgram(tx_hash=case.case_id)
    ap.root = build_chain(case.instrs, terminal)
    ap.context_ids = {0}
    return ap


def _storage_view(world: WorldState) -> Dict[int, int]:
    account = world.get_account(_CONTRACT)
    if account is None:
        return {}
    return {slot: value for slot, value in account.storage.items()
            if value != 0}


def _expected_nonzero(case: OracleCase) -> Dict[int, int]:
    return {slot: value for slot, value in case.expected_storage.items()
            if value != 0}


_EVM_HEADER = BlockHeader(number=1, timestamp=1_000, coinbase=0xBEEF)


def _run_evm_reference(op: str, operands: Tuple[int, ...]) -> dict:
    """Assemble one op into real bytecode and run the interpreter.

    Operands are pushed in reverse so the interpreter pops them in
    reference order (its binary handlers pop ``a`` from the top).
    """
    lines = [f"PUSH {value}" for value in reversed(operands)]
    lines += [op, "PUSH 0", "MSTORE", "PUSH 32", "PUSH 0", "RETURN"]
    code = assemble("\n".join(lines))
    world = WorldState()
    world.create_account(_SENDER, balance=10 ** 24)
    world.create_account(_CONTRACT, code=code)
    state = StateDB(world)
    tx = Transaction(sender=_SENDER, to=_CONTRACT, nonce=0,
                     gas_limit=5_000_000)
    result = EVM(state, _EVM_HEADER, tx).execute_transaction()
    return {
        "success": result.success,
        "word": (int.from_bytes(result.return_data, "big")
                 if result.success else None),
        "error": result.error,
    }


def run_case(case: OracleCase) -> Tuple[List[dict], bool]:
    """Run one case through every tier.

    Returns ``(divergence_artifacts, jit_compiled)``.
    """
    divergences: List[dict] = []
    jit_compiled = False

    def report(kind: str, detail: dict) -> None:
        artifact = dict(case.describe())
        artifact["kind"] = kind
        artifact["detail"] = detail
        divergences.append(artifact)

    ap = _build_ap(case)
    expected_word = int.from_bytes(case.expected_return[:32], "big")

    # Tier 1: interpreted walk (also the witness producer).
    walk_world = _base_world(case)
    walk_state = StateDB(walk_world)
    walk_tally = CostTally()
    mark = walk_state.snapshot()
    try:
        walk = execute_ap(ap, walk_state, _EVM_HEADER, None,
                          tally=walk_tally)
    except ConstraintViolation as exc:
        report("walk-vs-reference", {"guard_violation": str(exc)})
        return divergences, jit_compiled
    span = (mark, walk_state.snapshot())
    span_delta = walk_state.witness_deltas([span])[0]
    if walk.return_data != case.expected_return:
        report("walk-vs-reference", {
            "expected_return": case.expected_return.hex(),
            "walk_return": walk.return_data.hex(),
        })
    walk_storage = dict(_storage_view(walk_world))
    walk_state.commit()
    committed_storage = _storage_view(walk_world)
    if committed_storage != _expected_nonzero(case):
        report("walk-vs-reference", {
            "expected_storage": {str(k): v for k, v in
                                 sorted(_expected_nonzero(case).items())},
            "walk_storage": {str(k): v for k, v in
                             sorted(committed_storage.items())},
        })
    walk_root = walk_world.root()

    # Tier 2: JIT closure.
    try:
        compiled = compile_ap(ap, version=0)
    except SpecializeAbort:
        pass  # slow tier keeps such APs; walk coverage still applies
    else:
        jit_compiled = True
        jit_world = _base_world(case)
        jit_state = StateDB(jit_world)
        try:
            jit = compiled.fn(jit_state, _EVM_HEADER,
                              lambda n: 0, CostTally())
        except ConstraintViolation as exc:
            report("walk-vs-jit", {"jit_guard_violation": str(exc)})
        else:
            if jit.return_data != walk.return_data:
                report("walk-vs-jit", {
                    "walk_return": walk.return_data.hex(),
                    "jit_return": jit.return_data.hex(),
                })
            if (jit.success, jit.gas_used) != (walk.success,
                                               walk.gas_used):
                report("walk-vs-jit", {
                    "walk": [walk.success, walk.gas_used],
                    "jit": [jit.success, jit.gas_used],
                })
            if jit.observed_reads != walk.observed_reads:
                report("walk-vs-jit", {
                    "walk_reads": sorted(map(repr, walk.observed_reads)),
                    "jit_reads": sorted(map(repr, jit.observed_reads)),
                })
            jit_state.commit()
            if jit_world.root() != walk_root:
                report("walk-vs-jit", {
                    "walk_storage": {str(k): v for k, v in
                                     sorted(walk_storage.items())},
                    "jit_storage": {str(k): v for k, v in sorted(
                        _storage_view(jit_world).items())},
                })

    # Tier 3: witness checker (no re-execution).
    witness = ExecutionWitness.assemble(
        tx_hash=case.case_id, block_number=1, tier="walk",
        outcome="satisfied", success=walk.success,
        gas_used=walk.gas_used, cost_units=walk_tally.total,
        observed_reads=walk.observed_reads,
        delta=span_delta["delta"], created=span_delta["created"],
        guards_checked=walk.stats.guards_checked,
        logs=walk_state.logs, return_data=walk.return_data)
    check_world = _base_world(case)
    checker = WitnessChecker(check_world)
    _cost, failures = checker.check_transaction(witness, _EVM_HEADER)
    if failures:
        report("walk-vs-checker", {
            "failures": [f.as_dict() for f in failures]})
    elif check_world.root() != walk_root:
        report("walk-vs-checker", {
            "walk_storage": {str(k): v for k, v in
                             sorted(walk_storage.items())},
            "checker_storage": {str(k): v for k, v in sorted(
                _storage_view(check_world).items())},
        })

    # Tier 4: plain interpreter on assembled bytecode (single-op cases).
    if case.evm_check is not None:
        op, operands = case.evm_check
        evm = _run_evm_reference(op, operands)
        if not evm["success"]:
            report("interp-vs-reference", {
                "op": op, "operands": list(operands),
                "error": evm["error"]})
        elif evm["word"] != expected_word:
            report("interp-vs-reference", {
                "op": op, "operands": list(operands),
                "expected": expected_word, "interp": evm["word"]})

    return divergences, jit_compiled


def run_oracle(seed: int, cases: int = 200) -> OracleReport:
    """Run the conformance sweep: directed edge cases + random fill."""
    rng = random.Random(seed)
    report = OracleReport(seed=seed)
    plan: List[Optional[tuple]] = list(DIRECTED_CASES)
    plan += [None] * max(0, cases - len(plan))
    for case_id, directed in enumerate(plan):
        case = generate_case(rng, case_id, directed)
        report.cases += 1
        report.by_category[case.category] = \
            report.by_category.get(case.category, 0) + 1
        if case.evm_check is not None:
            report.evm_cross_checks += 1
        report.witness_checks += 1
        divergences, jit_compiled = run_case(case)
        if jit_compiled:
            report.jit_compiled += 1
        else:
            report.jit_aborts += 1
        report.divergences.extend(divergences)
    return report
