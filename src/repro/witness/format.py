"""The execution-witness record and its canonical byte-stable encoding.

One witness certifies one transaction's effect on the chain:

* **constraints** — the context values the execution *depended on*
  (the AP's observed read set, or the interpreter's traced reads),
  each a ``[kind, key, value]`` triple in read-set convention;
* **delta** — the net state change, ``[kind, key, pre, post]`` per
  touched account field / storage slot, plus created accounts;
* **accounting** — gas used, cost units charged, guard checks run;
* **digests** — SHA-256 over the canonical encodings of the log
  records and return data.

Everything encodes through :func:`repro.obs.export.canonical_json`
(sorted keys, compact separators), so a witness line — and the digest
of a witness — is byte-identical run to run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.export import canonical_json

WITNESS_VERSION = 1

#: Execution tiers that can emit a witness (the shared recording hook
#: serves all three).
TIER_PLAIN = "plain"    # full EVM interpretation
TIER_WALK = "walk"      # interpreted AP walk
TIER_JIT = "jit"        # specialized closure


def logs_digest(logs) -> str:
    """SHA-256 over the canonical encoding of one tx's log records.

    Accepts ``(address, topics, data)`` tuples (interpreter results)
    or :class:`repro.state.statedb.LogEntry` records interchangeably.
    """
    rows = []
    for entry in logs:
        if isinstance(entry, tuple):
            address, topics, data = entry
        else:
            address, topics, data = entry.address, entry.topics, entry.data
        rows.append([address, list(topics), data.hex()])
    payload = canonical_json(rows)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def data_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _encode_value(value) -> object:
    """JSON-stable encoding of a delta value (int, bytes, or None)."""
    if isinstance(value, bytes):
        return ["b", value.hex()]
    return value


def decode_value(value) -> object:
    if isinstance(value, list) and len(value) == 2 and value[0] == "b":
        return bytes.fromhex(value[1])
    return value


def _account_desc(account) -> Optional[list]:
    """Pre-image of a (re)created account: None when absent before."""
    if account is None:
        return None
    return [account.balance, account.nonce, account.code.hex()]


@dataclass
class ExecutionWitness:
    """Checkable record of one transaction's execution."""

    tx_hash: int
    block_number: int
    #: Which tier produced the result: "plain" | "walk" | "jit".
    tier: str
    #: Accelerator outcome label (no_ap/satisfied/violated/faulted).
    outcome: str
    success: bool
    gas_used: int
    #: Total cost units the original execution charged.
    cost_units: int
    #: Sorted ``[kind, key, value]`` constraint triples.
    constraints: List[list] = field(default_factory=list)
    #: Sorted ``[kind, key, pre, post]`` net-delta entries.
    delta: List[list] = field(default_factory=list)
    #: ``[address, pre_account_desc]`` per account created in the tx.
    created: List[list] = field(default_factory=list)
    guards_checked: int = 0
    logs_count: int = 0
    logs_sha256: str = logs_digest([])
    return_sha256: str = data_digest(b"")
    #: Distinct speculated context ids folded into the AP that ran
    #: (empty for plain executions).
    context_ids: List[int] = field(default_factory=list)

    @classmethod
    def assemble(cls, *, tx_hash: int, block_number: int, tier: str,
                 outcome: str, success: bool, gas_used: int,
                 cost_units: int,
                 observed_reads: Optional[Dict[tuple, int]],
                 delta: Dict[tuple, Tuple[object, object]],
                 created: List[tuple],
                 guards_checked: int,
                 logs: List[Tuple[int, Tuple[int, ...], bytes]],
                 return_data: bytes,
                 context_ids=()) -> "ExecutionWitness":
        constraints = sorted(
            [kind, list(key), value]
            for (kind, key), value in (observed_reads or {}).items())
        delta_rows = sorted(
            [kind, list(key), _encode_value(pre), _encode_value(post)]
            for (kind, key), (pre, post) in delta.items())
        return cls(
            tx_hash=tx_hash,
            block_number=block_number,
            tier=tier,
            outcome=outcome,
            success=success,
            gas_used=gas_used,
            cost_units=cost_units,
            constraints=constraints,
            delta=delta_rows,
            created=sorted([addr, _account_desc(prev)]
                           for addr, prev in created),
            guards_checked=guards_checked,
            logs_count=len(logs),
            logs_sha256=logs_digest(logs),
            return_sha256=data_digest(return_data),
            context_ids=sorted(context_ids),
        )


def witness_to_dict(witness: ExecutionWitness) -> dict:
    """Canonical plain-dict form (the JSONL line payload)."""
    return {
        "v": WITNESS_VERSION,
        "tx_hash": witness.tx_hash,
        "block": witness.block_number,
        "tier": witness.tier,
        "outcome": witness.outcome,
        "success": witness.success,
        "gas_used": witness.gas_used,
        "cost_units": witness.cost_units,
        "constraints": witness.constraints,
        "delta": witness.delta,
        "created": witness.created,
        "guards_checked": witness.guards_checked,
        "logs_count": witness.logs_count,
        "logs_sha256": witness.logs_sha256,
        "return_sha256": witness.return_sha256,
        "context_ids": witness.context_ids,
    }


def witness_from_dict(data: dict) -> ExecutionWitness:
    """Inverse of :func:`witness_to_dict` (archival round-trip)."""
    if data.get("v") != WITNESS_VERSION:
        raise ValueError(f"unsupported witness version {data.get('v')!r}")
    return ExecutionWitness(
        tx_hash=data["tx_hash"],
        block_number=data["block"],
        tier=data["tier"],
        outcome=data["outcome"],
        success=data["success"],
        gas_used=data["gas_used"],
        cost_units=data["cost_units"],
        constraints=[list(row) for row in data["constraints"]],
        delta=[list(row) for row in data["delta"]],
        created=[list(row) for row in data["created"]],
        guards_checked=data["guards_checked"],
        logs_count=data["logs_count"],
        logs_sha256=data["logs_sha256"],
        return_sha256=data["return_sha256"],
        context_ids=list(data["context_ids"]),
    )


def witness_digest(witness: ExecutionWitness) -> str:
    """SHA-256 of the canonical witness encoding (its identity)."""
    payload = canonical_json(witness_to_dict(witness))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()
