"""Dataset persistence: save/load recorded traffic as JSON.

The paper publishes its recorded datasets alongside the code; this
module gives the reproduction the same property — a recorded period can
be saved, shared, and replayed byte-identically (`load` rebuilds the
same transactions, hence the same hashes and Merkle roots).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.sim.recorder import Dataset, DatasetConfig
from repro.state.account import Account
from repro.state.world import WorldState
from repro.workloads.mixed import TimedTx

FORMAT_VERSION = 1


def _tx_to_json(tx: Transaction) -> dict:
    return {
        "sender": hex(tx.sender),
        "to": hex(tx.to),
        "data": tx.data.hex(),
        "value": str(tx.value),
        "gas_price": str(tx.gas_price),
        "gas_limit": tx.gas_limit,
        "nonce": tx.nonce,
        "origin_miner": (hex(tx.origin_miner)
                         if tx.origin_miner is not None else None),
    }


def _tx_from_json(payload: dict) -> Transaction:
    return Transaction(
        sender=int(payload["sender"], 16),
        to=int(payload["to"], 16),
        data=bytes.fromhex(payload["data"]),
        value=int(payload["value"]),
        gas_price=int(payload["gas_price"]),
        gas_limit=payload["gas_limit"],
        nonce=payload["nonce"],
        origin_miner=(int(payload["origin_miner"], 16)
                      if payload["origin_miner"] is not None else None),
    )


def _header_to_json(header: BlockHeader) -> dict:
    return {
        "number": header.number,
        "timestamp": header.timestamp,
        "coinbase": hex(header.coinbase),
        "parent_hash": hex(header.parent_hash),
        "gas_limit": header.gas_limit,
        "difficulty": header.difficulty,
        "chain_id": header.chain_id,
    }


def _header_from_json(payload: dict) -> BlockHeader:
    return BlockHeader(
        number=payload["number"],
        timestamp=payload["timestamp"],
        coinbase=int(payload["coinbase"], 16),
        parent_hash=int(payload["parent_hash"], 16),
        gas_limit=payload["gas_limit"],
        difficulty=payload["difficulty"],
        chain_id=payload["chain_id"],
    )


def _block_to_json(block: Block, tx_index: Dict[int, int]) -> dict:
    return {
        "header": _header_to_json(block.header),
        "txs": [tx_index[tx.hash] for tx in block.transactions],
        "state_root": (hex(block.state_root)
                       if block.state_root is not None else None),
        "miner_id": (hex(block.miner_id)
                     if block.miner_id is not None else None),
    }


def _world_to_json(world: WorldState) -> list:
    accounts = []
    for address, account in sorted(world.accounts().items()):
        accounts.append({
            "address": hex(address),
            "balance": str(account.balance),
            "nonce": account.nonce,
            "code": account.code.hex(),
            "storage": {hex(k): hex(v)
                        for k, v in sorted(account.storage.items())},
        })
    return accounts


def _world_from_json(payload: list) -> WorldState:
    world = WorldState()
    for entry in payload:
        account = Account(
            balance=int(entry["balance"]),
            nonce=entry["nonce"],
            code=bytes.fromhex(entry["code"]),
            storage={int(k, 16): int(v, 16)
                     for k, v in entry["storage"].items()},
        )
        world.accounts()[int(entry["address"], 16)] = account
    return world


# Public codec aliases: crash-recovery snapshots
# (:mod:`repro.recovery.snapshot`) persist worlds and pending
# transactions with the exact same byte-stable encoding datasets use,
# so a state saved by one layer round-trips through the other.
tx_to_json = _tx_to_json
tx_from_json = _tx_from_json
header_to_json = _header_to_json
header_from_json = _header_from_json
world_to_json = _world_to_json
world_from_json = _world_from_json


def save_dataset(dataset: Dataset, path: str) -> None:
    """Serialize ``dataset`` to JSON at ``path``."""
    # Deduplicate transactions through an index table.
    all_txs: List[Transaction] = [t.tx for t in dataset.all_txs]
    tx_index = {tx.hash: i for i, tx in enumerate(all_txs)}
    payload = {
        "version": FORMAT_VERSION,
        "name": dataset.name,
        "genesis_world": _world_to_json(dataset.genesis_world),
        "genesis_block": _block_to_json(dataset.genesis_block, tx_index),
        "txs": [_tx_to_json(tx) for tx in all_txs],
        "kinds": [dataset.kinds.get(tx.hash, "?") for tx in all_txs],
        "times": [t.time for t in dataset.all_txs],
        "blocks": [
            {"arrival": arrival, **_block_to_json(block, tx_index)}
            for arrival, block in dataset.blocks
        ],
        "fork_blocks": [
            {"arrival": arrival, **_block_to_json(block, tx_index)}
            for arrival, block in dataset.fork_blocks
        ],
        "tx_arrivals": {
            observer: [[arrival, tx_index[tx.hash]]
                       for arrival, tx in arrivals]
            for observer, arrivals in dataset.tx_arrivals.items()
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_dataset(path: str) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format {payload.get('version')!r}")
    txs = [_tx_from_json(entry) for entry in payload["txs"]]

    def block_from(entry) -> Tuple[float, Block]:
        block = Block(
            header=_header_from_json(entry["header"]),
            transactions=[txs[i] for i in entry["txs"]],
            state_root=(int(entry["state_root"], 16)
                        if entry["state_root"] is not None else None),
            miner_id=(int(entry["miner_id"], 16)
                      if entry["miner_id"] is not None else None),
        )
        return entry["arrival"], block

    genesis_entry = dict(payload["genesis_block"])
    genesis_entry["arrival"] = 0.0
    _, genesis_block = block_from(genesis_entry)
    all_txs = [TimedTx(time=t, tx=tx, kind=kind)
               for t, tx, kind in zip(payload["times"], txs,
                                      payload["kinds"])]
    return Dataset(
        name=payload["name"],
        config=DatasetConfig(name=payload["name"]),
        genesis_world=_world_from_json(payload["genesis_world"]),
        genesis_block=genesis_block,
        blocks=[block_from(e) for e in payload["blocks"]],
        fork_blocks=[block_from(e) for e in payload["fork_blocks"]],
        tx_arrivals={
            observer: [(arrival, txs[i]) for arrival, i in arrivals]
            for observer, arrivals in payload["tx_arrivals"].items()
        },
        all_txs=all_txs,
        kinds={tx.hash: kind for tx, kind in zip(txs, payload["kinds"])},
    )
