"""Emulator: faithful replay of a recorded dataset into evaluation nodes.

Mirrors the paper's emulator (§5.4): "takes a period of recorded traffic
and a copy of the local blockchain database, resets the state to where
the traffic starts, and replays the traffic faithfully, making sure the
relative arrival timings of the transactions and blocks are accurately
respected".

One replay drives a :class:`BaselineNode` and a :class:`ForerunnerNode`
over the identical stream; per-transaction records are joined by hash
into :class:`EvaluationRun`, from which every evaluation table/figure
is computed (:mod:`repro.bench`).

Every replay gets its own :class:`~repro.obs.registry.MetricsRegistry`
and span tracer, so instrument names are stable run-to-run and two
replays of the same dataset produce byte-identical deterministic
snapshots and trace files.  Wall-clock readings (the only
machine-dependent quantity) are quarantined into gauges flagged
``nondeterministic`` — excluded from snapshots and exports by default —
and surface only through the ``wall_seconds_*`` convenience properties.
"""

from __future__ import annotations

import gc as _gc
import heapq
import time as _time
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Dict, List, Optional, Tuple

from repro.core.node import (
    BaselineNode,
    BlockReport,
    ForerunnerConfig,
    ForerunnerNode,
    TxRecord,
)
from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NullTracer, SpanTracer
from repro.sim.recorder import Dataset


@dataclass
class JoinedRecord:
    """Baseline + Forerunner execution of the same transaction."""

    tx_hash: int
    block_number: int
    kind: str
    baseline_cost: int
    forerunner_cost: int
    gas_used: int
    heard: bool
    heard_delay: float
    outcome: str
    ap_ready: bool
    perfect: bool
    first_context_perfect: bool
    speculated_contexts: int
    shortcut_hits: int = 0
    executed_nodes: int = 0
    skipped_nodes: int = 0
    baseline_cpu: int = 0
    baseline_io_units: int = 0
    baseline_io_reads: int = 0

    @property
    def speedup(self) -> float:
        if self.forerunner_cost <= 0:
            return 1.0
        return self.baseline_cost / self.forerunner_cost


@dataclass
class EvaluationRun:
    """Everything measured during one replay."""

    dataset_name: str
    observer: str
    records: List[JoinedRecord] = field(default_factory=list)
    roots_matched: int = 0
    blocks_executed: int = 0
    speculation_jobs: int = 0
    total_speculation_cost: int = 0
    prefetch_offpath_cost: int = 0
    #: Scheduler payload (``ForerunnerNode.sched_report()``): executor
    #: aggregates, admission counters, per-block schedules.
    sched: dict = field(default_factory=dict)
    forerunner_node: Optional[ForerunnerNode] = None
    #: Per-replay metrics registry (fresh per run: names are stable).
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Per-replay span tracer (``NullTracer`` when obs is disabled).
    tracer: object = None
    #: The active :class:`repro.faults.injector.FaultInjector` when the
    #: replay ran under a fault plan, else ``None``.
    fault_injector: object = None

    # Wall clock is quarantined in nondeterministic gauges: it never
    # reaches deterministic snapshots, traces, or report tables.
    @property
    def wall_seconds_baseline(self) -> float:
        return float(self.registry.gauge(
            "wall.baseline_seconds", nondeterministic=True).value)

    @property
    def wall_seconds_forerunner(self) -> float:
        return float(self.registry.gauge(
            "wall.forerunner_seconds", nondeterministic=True).value)

    def metrics(self, include_nondeterministic: bool = False) -> dict:
        """Deterministic metrics snapshot of this replay."""
        return self.registry.snapshot(include_nondeterministic)

    def heard_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.heard for r in self.records) / len(self.records)

    def heard_fraction_weighted(self) -> float:
        total = sum(r.baseline_cost for r in self.records)
        if not total:
            return 0.0
        heard = sum(r.baseline_cost for r in self.records if r.heard)
        return heard / total


def replay(dataset: Dataset, observer: str = "live",
           config: Optional[ForerunnerConfig] = None,
           speculation_tick: float = 2.0,
           fault_plan=None,
           lanes: Optional[int] = None) -> EvaluationRun:
    """Replay ``dataset`` through baseline + Forerunner nodes.

    ``fault_plan`` (a :class:`repro.faults.injector.FaultPlan`) runs
    the Forerunner node under deterministic chaos; gossip-delivery
    faults (drop / duplicate / reorder) are applied here, at the event
    loop, where the message timeline lives.

    ``lanes`` overrides ``config.sched.lanes`` (parallel execution
    lanes for block processing); any value commits byte-identical
    state — only the ``run.sched`` critical-path metrics change.
    """
    if observer not in dataset.tx_arrivals:
        raise SimulationError(
            f"dataset {dataset.name!r} has no observer {observer!r} "
            f"(has {sorted(dataset.tx_arrivals)})")

    config = config or ForerunnerConfig()
    if fault_plan is not None:
        config = _dc_replace(config, fault_plan=fault_plan)
    if lanes is not None:
        config = _dc_replace(
            config, sched=_dc_replace(config.sched, lanes=lanes))
    registry = MetricsRegistry()
    tracer = SpanTracer(registry) if config.enable_obs else NullTracer()
    baseline = BaselineNode(dataset.genesis_world.copy(),
                            registry=registry)
    forerunner = ForerunnerNode(dataset.genesis_world.copy(), config,
                                registry=registry, tracer=tracer)
    forerunner.predictor.observe_block(dataset.genesis_block)
    g_wall_base = registry.gauge("wall.baseline_seconds",
                                 nondeterministic=True)
    g_wall_fore = registry.gauge("wall.forerunner_seconds",
                                 nondeterministic=True)

    # Merged timeline: transactions, speculation ticks, blocks.
    # Priority tuple: (time, priority) so tx arrivals at the same time
    # precede speculation ticks, which precede block processing.
    events: List[Tuple[float, int, int, object]] = []
    counter = 0
    for arrival, tx in dataset.tx_arrivals[observer]:
        events.append((arrival, 0, counter, ("tx", tx)))
        counter += 1
    last_block_time = dataset.blocks[-1][0] if dataset.blocks else 0.0
    tick = speculation_tick
    while tick < last_block_time:
        events.append((tick, 1, counter, ("tick", None)))
        counter += 1
        tick += speculation_tick
    for arrival, block in dataset.blocks:
        events.append((arrival, 2, counter, ("block", block)))
        counter += 1
    heapq.heapify(events)

    run = EvaluationRun(dataset_name=dataset.name, observer=observer,
                        registry=registry, tracer=tracer)
    injector = forerunner.fault_injector
    run.fault_injector = injector if injector.enabled else None
    kinds = dataset.kinds
    baseline_records: Dict[int, TxRecord] = {}

    while events:
        now, _, _, (kind, payload) = heapq.heappop(events)
        if kind == "tx" or kind == "tx-redelivery":
            if kind == "tx" and injector.enabled:
                rule = injector.evaluate("gossip.deliver",
                                         tx=payload.hash)
                if rule is not None:
                    if rule.kind == "duplicate":
                        # Deliver twice; the pool's dedup absorbs it.
                        forerunner.on_transaction(payload, now)
                    elif rule.kind == "reorder":
                        # Redelivered events are never re-evaluated, so
                        # a 100% reorder rate still terminates.
                        counter += 1
                        heapq.heappush(
                            events,
                            (now + rule.reorder_seconds(), 0, counter,
                             ("tx-redelivery", payload)))
                        continue
                    else:
                        # drop (and any raise-kind rule): the observer
                        # never hears this transaction.
                        continue
            forerunner.on_transaction(payload, now)
        elif kind == "tick":
            run.speculation_jobs += forerunner.run_speculation(now)
        else:
            # One last speculation chance before the block executes
            # (the paper's window spans up to the execution moment).
            run.speculation_jobs += forerunner.run_speculation(now)
            # Drain the speculation phase's garbage before timing: a
            # gen-2 collection triggered by speculation allocations
            # would otherwise land inside whichever node's window
            # allocates next (observed as multi-ms spikes on the
            # Forerunner side, which always runs second).
            _gc.collect()
            started = _time.perf_counter()
            base_report: BlockReport = baseline.process_block(payload)
            mid = _time.perf_counter()
            with tracer.span("block", number=payload.number) as span:
                fore_report = forerunner.process_block(payload, now)
                span.add_cost(sum(r.cost for r in fore_report.records))
            ended = _time.perf_counter()
            g_wall_base.add(mid - started)
            g_wall_fore.add(ended - mid)
            run.blocks_executed += 1
            if base_report.state_root == fore_report.state_root:
                run.roots_matched += 1
            else:  # pragma: no cover - correctness violation
                raise SimulationError(
                    f"root divergence at block {payload.number}")
            for record in base_report.records:
                baseline_records[record.tx_hash] = record
            for record in fore_report.records:
                base = baseline_records.get(record.tx_hash)
                if base is None:
                    continue
                run.records.append(JoinedRecord(
                    tx_hash=record.tx_hash,
                    block_number=record.block_number,
                    kind=kinds.get(record.tx_hash, "?"),
                    baseline_cost=base.cost,
                    forerunner_cost=record.cost,
                    baseline_cpu=base.cpu_units,
                    baseline_io_units=base.io_units,
                    baseline_io_reads=base.io_reads,
                    gas_used=record.gas_used,
                    heard=record.heard,
                    heard_delay=record.heard_delay,
                    outcome=record.outcome,
                    ap_ready=record.ap_ready,
                    perfect=record.perfect,
                    first_context_perfect=record.first_context_perfect,
                    speculated_contexts=record.speculated_contexts,
                    shortcut_hits=record.shortcut_hits,
                    executed_nodes=record.executed_nodes,
                    skipped_nodes=record.skipped_nodes,
                ))

    run.total_speculation_cost = forerunner.speculator.total_speculation_cost
    run.prefetch_offpath_cost = forerunner.prefetcher.offpath_cost
    run.sched = forerunner.sched_report()
    run.forerunner_node = forerunner
    return run
