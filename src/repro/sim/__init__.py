"""DiCE network simulation: traffic recording and faithful replay."""

from repro.sim.recorder import Dataset, DatasetConfig, record_dataset
from repro.sim.emulator import EvaluationRun, replay
from repro.sim.storage import load_dataset, save_dataset

__all__ = ["Dataset", "DatasetConfig", "record_dataset",
           "EvaluationRun", "replay", "save_dataset", "load_dataset"]
