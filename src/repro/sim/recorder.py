"""Traffic recorder: generates a dataset of timed transactions + blocks.

Plays the role of the paper's dedicated recorder node (§5.4): it
captures "all the pending transactions and the blocks ... with precise
timings".  Here the worldwide network itself is simulated — workload
generators produce transactions, a gossip model disseminates them, a
PoW schedule selects miners, and each miner packs blocks from its own
view of the pool.  The result is a :class:`Dataset` that the emulator
replays faithfully into evaluation nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.consensus.miner import Miner
from repro.consensus.pow import PowSchedule
from repro.constants import DEFAULT_BLOCK_GAS_LIMIT
from repro.evm.interpreter import EVM
from repro.p2p.gossip import GossipNetwork
from repro.p2p.latency import LatencyModel
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.workloads.mixed import MixedWorkload, TimedTx, TrafficConfig


@dataclass
class DatasetConfig:
    """Shape of one recorded period."""

    name: str = "L1"
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    miners: int = 8
    #: Zipf-ish hash power skew exponent (no miner dominates).
    hash_power_skew: float = 0.7
    mean_block_interval: float = 13.0
    block_gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    #: Probability a height produces a competing (temporary-fork) block.
    fork_probability: float = 0.07
    #: Block propagation delay to observers (seconds).
    block_propagation: float = 0.8
    #: Observer gossip models (name -> latency).  The same network can
    #: be observed through different connections (L1 vs R1, §5.1).
    observers: Dict[str, LatencyModel] = field(default_factory=dict)
    seed: int = 2021
    #: Extra seconds after traffic stops, to drain the pool.
    drain: float = 45.0


@dataclass
class Dataset:
    """A recorded traffic period, replayable by the emulator."""

    name: str
    config: DatasetConfig
    genesis_world: WorldState
    genesis_block: Block
    #: Canonical blocks with observer arrival times, in order.
    blocks: List[Tuple[float, Block]]
    #: Temporary-fork blocks (never executed; counted like Table 1).
    fork_blocks: List[Tuple[float, Block]]
    #: Per-observer transaction arrival streams (time-sorted).
    tx_arrivals: Dict[str, List[Tuple[float, Transaction]]]
    #: All generated transactions with workload labels.
    all_txs: List[TimedTx]
    #: tx hash -> workload kind.
    kinds: Dict[int, str]

    @property
    def block_count(self) -> int:
        """Blocks including temporary forks (Table 1 convention)."""
        return len(self.blocks) + len(self.fork_blocks)

    @property
    def tx_count(self) -> int:
        return sum(len(b.transactions) for _, b in self.blocks)

    def block_number_range(self) -> Tuple[int, int]:
        if not self.blocks:
            return (0, 0)
        return (self.blocks[0][1].number, self.blocks[-1][1].number)


def _hash_powers(count: int, skew: float) -> Dict[int, float]:
    from repro.workloads.base import MINER_BASE
    return {
        MINER_BASE + i: 1.0 / ((i + 1) ** skew)
        for i in range(count)
    }


def record_dataset(config: Optional[DatasetConfig] = None) -> Dataset:
    """Generate one traffic period and record it."""
    config = config or DatasetConfig()
    rng = random.Random(config.seed)

    hash_power = _hash_powers(config.miners, config.hash_power_skew)
    miner_ids = list(hash_power)
    traffic = config.traffic
    if not traffic.miner_ids:
        traffic.miner_ids = tuple(miner_ids)

    workload = MixedWorkload(traffic)
    genesis_world, stream = workload.generate()
    kinds = {timed.tx.hash: timed.kind for timed in stream}

    # Dissemination: arrival times per miner and per observer.
    observers = dict(config.observers)
    if not observers:
        observers = {"live": LatencyModel()}
    gossip = GossipNetwork(miner_ids=miner_ids, seed=config.seed + 1)
    for name, model in observers.items():
        gossip.add_observer(name, model)

    miners = {
        miner_id: Miner(
            miner_id=miner_id,
            clock_skew=rng.uniform(-2.0, 6.0),
            gas_limit=config.block_gas_limit,
            seed=config.seed + index,
        )
        for index, miner_id in enumerate(miner_ids)
    }
    tx_arrivals: Dict[str, List[Tuple[float, Transaction]]] = {
        name: [] for name in observers
    }
    for timed in stream:
        dissemination = gossip.disseminate(timed.tx, timed.time)
        for miner_id, arrival in dissemination.miner_arrivals.items():
            miners[miner_id].hear(timed.tx, arrival)
        for name, arrival in dissemination.observer_arrivals.items():
            if arrival != float("inf"):
                tx_arrivals[name].append((arrival, timed.tx))
    for arrivals in tx_arrivals.values():
        arrivals.sort(key=lambda item: item[0])

    # Mining + truth execution.
    genesis_header = BlockHeader(number=0, timestamp=0, coinbase=0)
    genesis_block = Block(header=genesis_header)
    truth_world = genesis_world.copy()
    genesis_block.state_root = truth_world.root()

    schedule = PowSchedule(hash_power,
                           mean_interval=config.mean_block_interval,
                           seed=config.seed + 2)
    blocks: List[Tuple[float, Block]] = []
    fork_blocks: List[Tuple[float, Block]] = []
    packed: Set[int] = set()
    parent = genesis_block
    now = 0.0
    end_time = traffic.duration + config.drain
    while True:
        now, winner = schedule.next_block(now)
        if now >= end_time:
            break
        next_nonces = {
            address: account.nonce
            for address, account in truth_world.accounts().items()
        }
        block = miners[winner].build_block(now, parent, next_nonces, packed)
        # Execute on the truth world to stamp the post-state root.
        state = StateDB(truth_world)
        for tx in block.transactions:
            EVM(state, block.header, tx).execute_transaction()
        state.commit()
        block.state_root = truth_world.root()
        blocks.append((now + config.block_propagation, block))
        # Temporary fork: a competing miner found a same-height block
        # that lost the race — built from ITS view, without knowledge of
        # the winner (overlapping contents, like real uncles).
        if schedule.uniform() < config.fork_probability:
            rival_id = schedule.competing_miner(winner)
            rival = miners[rival_id].build_block(
                now + 0.4, parent, next_nonces, packed)
            fork_blocks.append(
                (now + 0.4 + config.block_propagation, rival))
        packed.update(tx.hash for tx in block.transactions)
        parent = block

    return Dataset(
        name=config.name,
        config=config,
        genesis_world=genesis_world,
        genesis_block=genesis_block,
        blocks=blocks,
        fork_blocks=fork_blocks,
        tx_arrivals=tx_arrivals,
        all_txs=stream,
        kinds=kinds,
    )
