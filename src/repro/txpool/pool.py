"""Pending transaction pool with nonce ordering and price views.

Every node keeps one: transactions arrive from gossip, leave when a
block packs them.  Miners draw their packing candidates from here;
Forerunner's predictor monitors it (paper Figure 3).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.consensus.packing import priority_key
from repro.obs.registry import MetricsRegistry, get_registry


class TxPool:
    """Pending pool: hash-indexed with per-sender nonce queues.

    Instrumented under the ``txpool.*`` obs scope: arrivals,
    replacements, rejected (lower-priced duplicate) and removed
    transactions, plus a size gauge.
    """

    def __init__(self,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._by_hash: Dict[int, Transaction] = {}
        self._by_sender: Dict[int, Dict[int, Transaction]] = {}
        self.arrival_times: Dict[int, float] = {}
        obs = (registry or get_registry()).scope("txpool")
        self.c_added = obs.counter("added")
        self.c_replaced = obs.counter("replaced")
        self.c_rejected = obs.counter("rejected")
        self.c_removed = obs.counter("removed")
        self.c_requeued = obs.counter("requeued")
        self._g_size = obs.gauge("size")

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: int) -> bool:
        return tx_hash in self._by_hash

    def add(self, tx: Transaction, now: float = 0.0) -> bool:
        """Insert a pending transaction; replaces a same-nonce tx only
        if the newcomer pays a strictly higher gas price (like geth's
        replacement rule).  Returns True if inserted."""
        sender_queue = self._by_sender.setdefault(tx.sender, {})
        existing = sender_queue.get(tx.nonce)
        if existing is not None:
            if tx.gas_price <= existing.gas_price:
                self.c_rejected.inc()
                return False
            self._by_hash.pop(existing.hash, None)
            self.arrival_times.pop(existing.hash, None)
            self.c_replaced.inc()
        sender_queue[tx.nonce] = tx
        self._by_hash[tx.hash] = tx
        self.arrival_times[tx.hash] = now
        self.c_added.inc()
        self._g_size.set(len(self._by_hash))
        return True

    def requeue(self, tx: Transaction, now: float = 0.0) -> bool:
        """Return a reorged-out transaction to the pool.

        Goes through :meth:`add`, so the transaction re-enters its
        sender's nonce queue (and with it :meth:`ready_for` gap
        ordering) and is re-ranked by the *live* priority key on the
        next :meth:`price_sorted` call — never appended with the
        priority snapshot it held on the abandoned branch.  The
        original arrival time is preserved when known, keeping
        heard-delay accounting stable across the reorg.
        """
        arrival = self.arrival_times.get(tx.hash, now)
        if not self.add(tx, arrival):
            return False
        self.c_requeued.inc()
        return True

    def remove(self, tx_hash: int) -> Optional[Transaction]:
        """Drop one transaction (e.g. after it was packed); returns it."""
        tx = self._by_hash.pop(tx_hash, None)
        if tx is None:
            return None
        self.c_removed.inc()
        self._g_size.set(len(self._by_hash))
        self.arrival_times.pop(tx_hash, None)
        sender_queue = self._by_sender.get(tx.sender)
        if sender_queue and sender_queue.get(tx.nonce) is tx:
            del sender_queue[tx.nonce]
            if not sender_queue:
                del self._by_sender[tx.sender]
        return tx

    def remove_all(self, tx_hashes: Iterable[int]) -> int:
        """Drop several transactions; returns how many were present."""
        removed = 0
        for tx_hash in tx_hashes:
            if self.remove(tx_hash) is not None:
                removed += 1
        return removed

    def pending(self) -> List[Transaction]:
        """All pending transactions (no particular order)."""
        return list(self._by_hash.values())

    def price_sorted(self, rng: Optional[random.Random] = None,
                     prioritize_miner: Optional[int] = None
                     ) -> List[Transaction]:
        """Transactions by descending gas price.

        Ties break randomly (geth packs same-price transactions in
        random order), and a miner's own transactions sort first when
        ``prioritize_miner`` is given — the two packing heuristics the
        predictor simulates (paper §4.4).  The deterministic prefix of
        the key is :func:`repro.consensus.packing.priority_key`, the
        same fee-priority currency block packing and speculation
        admission (:mod:`repro.sched.admission`) rank by.
        """
        rng = rng or random.Random(0)

        def key(tx: Transaction):
            return priority_key(tx, prioritize_miner) + (rng.random(),)

        return sorted(self._by_hash.values(), key=key)

    def ready_for(self, sender: int, next_nonce: int
                  ) -> List[Transaction]:
        """Sender's consecutive-nonce run starting at ``next_nonce``."""
        queue = self._by_sender.get(sender, {})
        ready: List[Transaction] = []
        nonce = next_nonce
        while nonce in queue:
            ready.append(queue[nonce])
            nonce += 1
        return ready
