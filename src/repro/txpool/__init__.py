"""Pending transaction pool."""

from repro.txpool.pool import TxPool

__all__ = ["TxPool"]
