"""Memoization: shortcut synthesis over AP segments (paper §4.3).

A shortcut lets AP execution skip an instruction segment whenever the
segment's input registers hold exactly the values seen during some
pre-execution; the remembered outputs are committed instead.  Segments
may contain guard nodes — skipping past a guard is what makes merged
constraint checking almost free when the context matches a speculated
one (the paper's m1 node skips both the round computation *and* the
guard on it).

Shortcut entries from different pre-executions of the same transaction
are merged into one node keyed by input values (Figure 10's m3 carries
both 2000 and 2010), so a single lookup serves the many-future case.

A heuristic caps the number of shortcuts per AP; for each eligible
segment we also add one suffix sub-segment that depends on strictly
fewer inputs (the paper's m5), so a partial match can still skip part
of the work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.ap import (
    AcceleratedProgram,
    APNode,
    Shortcut,
    Terminal,
    observed_branch_key,
)
from repro.core.sevm import Reg, SKind, is_reg

#: Maximum shortcut nodes per accelerated program.
MAX_SHORTCUTS = 96
#: Minimum instructions a segment must span to be worth a shortcut.
MIN_SEGMENT_LEN = 1

#: Shortcut-selection strategies (paper fn. 12 calls refined heuristics
#: future work; we implement three points on the spectrum):
#:  * "coarse"  — one shortcut per maximal segment;
#:  * "default" — per segment plus one proper-subset suffix (the
#:    paper's m5-style sub-segment);
#:  * "fine"    — per segment plus every suffix whose input set
#:    strictly shrinks (finest partial matching, most probe overhead).
STRATEGIES = ("coarse", "default", "fine")


def _segment_span(start: APNode, concrete: Dict[Reg, int]
                  ) -> Optional[Tuple[List[APNode], object]]:
    """Walk a compute/guard segment starting at ``start`` along the
    branches selected by ``concrete`` values.

    Returns (segment nodes, resume node) or None if the segment is
    empty/unusable.  The segment ends before the first READ, WRITE, or
    terminal.
    """
    nodes: List[APNode] = []
    node: object = start
    while isinstance(node, APNode):
        instr = node.instr
        if instr.kind in (SKind.READ, SKind.WRITE):
            break
        if instr.kind is SKind.GUARD:
            values = tuple(
                concrete[a] if is_reg(a) else a for a in instr.args)
            key = observed_branch_key(instr, values)
            child = node.branches.get(key)
            if child is None:
                # This path's concretes do not traverse this guard (can
                # happen for foreign-branch nodes); stop the segment.
                break
            nodes.append(node)
            node = child
            continue
        nodes.append(node)
        node = node.next
    if not nodes:
        return None
    return nodes, node


def _segment_io(nodes: List[APNode], liveness: "_Liveness"
                ) -> Tuple[Tuple[Reg, ...], Tuple[Reg, ...]]:
    """(input registers, output registers) of a segment."""
    defined: Set[Reg] = set()
    inputs: List[Reg] = []
    seen_inputs: Set[Reg] = set()
    end_index = -1
    for node in nodes:
        end_index = max(end_index, liveness.index_of(node))
        for arg in node.instr.args:
            if is_reg(arg) and arg not in defined and arg not in seen_inputs:
                seen_inputs.add(arg)
                inputs.append(arg)
        if node.instr.dest is not None:
            defined.add(node.instr.dest)
    outputs = tuple(reg for reg in defined
                    if liveness.last_use(reg) > end_index)
    return tuple(inputs), outputs


class _Liveness:
    """O(n) liveness summary: a register is live after a position iff
    its last use (on any branch, or in any terminal's return layout)
    comes later.  Conservative across branches, which is safe — extra
    outputs only make shortcut entries slightly larger."""

    def __init__(self, ap: AcceleratedProgram) -> None:
        nodes = ap.all_nodes()
        self._index = {id(node): i for i, node in enumerate(nodes)}
        self._last_use: Dict[Reg, float] = {}
        for i, node in enumerate(nodes):
            for arg in node.instr.args:
                if is_reg(arg):
                    previous = self._last_use.get(arg, -1)
                    if i > previous:
                        self._last_use[arg] = i
        for terminal in ap._terminals():  # noqa: SLF001
            for _, piece in terminal.return_pieces:
                if piece[0] == "reg":
                    self._last_use[piece[1]] = float("inf")

    def index_of(self, node) -> int:
        return self._index.get(id(node), -1)

    def last_use(self, reg: Reg) -> float:
        return self._last_use.get(reg, -1)


def build_shortcuts(ap: AcceleratedProgram,
                    strategy: str = "default") -> int:
    """(Re)build all shortcut nodes for ``ap``; returns the count.

    Called by the speculator after every merge: entries from every
    recorded path are folded into the shared shortcut nodes.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown memoization strategy {strategy!r}")
    for node in ap.all_nodes():
        node.shortcut = None
    if ap.root is None or not ap.paths:
        return 0
    liveness = _Liveness(ap)

    total = 0
    for path in ap.paths:
        if total >= MAX_SHORTCUTS:
            break
        total += _add_path_shortcuts(ap, path, liveness,
                                     MAX_SHORTCUTS - total, strategy)
    ap.shortcut_count = total
    return total


def _add_path_shortcuts(ap: AcceleratedProgram, path, liveness,
                        budget: int, strategy: str = "default") -> int:
    """Walk one path's route adding/extending shortcuts; returns number
    of *new* shortcut nodes created."""
    concrete = path.concrete
    created = 0
    node: object = ap.root
    while isinstance(node, APNode) and budget - created >= 0:
        instr = node.instr
        if instr.kind in (SKind.READ, SKind.WRITE):
            node = node.next
            continue
        span = _segment_span(node, concrete)
        if span is None:
            node = _advance(node, concrete)
            continue
        nodes, resume = span
        if len(nodes) >= MIN_SEGMENT_LEN:
            created += self_register(node, nodes, resume, concrete,
                                     liveness)
            if strategy == "default":
                # One sub-segment shortcut (the paper's m5): the longest
                # proper suffix depending on strictly fewer inputs.
                sub = _best_suffix(nodes, concrete, liveness)
                if sub is not None and created < budget:
                    sub_start, sub_nodes = sub
                    created += self_register(sub_start, sub_nodes,
                                             resume, concrete, liveness)
            elif strategy == "fine":
                created += _fine_suffixes(nodes, resume, concrete,
                                          liveness, budget - created)
        node = resume
    return created


def _fine_suffixes(nodes: List[APNode], resume, concrete, liveness,
                   budget: int) -> int:
    """Register a shortcut at every suffix whose input set shrinks."""
    created = 0
    previous_inputs = set(_segment_io(nodes, liveness)[0])
    for split in range(1, len(nodes)):
        if created >= budget:
            break
        suffix = nodes[split:]
        suffix_inputs = set(_segment_io(suffix, liveness)[0])
        if len(suffix_inputs) < len(previous_inputs):
            created += self_register(suffix[0], suffix, resume,
                                     concrete, liveness)
            previous_inputs = suffix_inputs
    return created


def self_register(start: APNode, nodes: List[APNode], resume,
                  concrete: Dict[Reg, int], liveness) -> int:
    """Add (or extend) the shortcut anchored at ``start``."""
    inputs, outputs = _segment_io(nodes, liveness)
    try:
        key = tuple(concrete[reg] for reg in inputs)
        output_values = {reg: concrete[reg] for reg in outputs}
    except KeyError:
        return 0  # foreign-branch registers: this path cannot memoize here
    new_node = 0
    if start.shortcut is None or start.shortcut.input_regs != inputs:
        if start.shortcut is not None:
            # Input sets diverged between paths (different live sets);
            # keep the existing shortcut untouched.
            return 0
        start.shortcut = Shortcut(input_regs=inputs, length=len(nodes))
        new_node = 1
    if key not in start.shortcut.entries:
        start.shortcut.entries[key] = (output_values, resume)
    return new_node


def _best_suffix(nodes: List[APNode], concrete, liveness):
    """Longest proper suffix of ``nodes`` using strictly fewer inputs."""
    if len(nodes) < 2:
        return None
    full_inputs, _ = _segment_io(nodes, liveness)
    for split in range(1, len(nodes)):
        suffix = nodes[split:]
        suffix_inputs, _ = _segment_io(suffix, liveness)
        # Inputs may include registers defined in the dropped prefix.
        if len(set(suffix_inputs)) < len(set(full_inputs)):
            return suffix[0], suffix
    return None


def _advance(node: APNode, concrete: Dict[Reg, int]):
    """Step to the next node along the branches this path takes."""
    if node.branches is None:
        return node.next
    instr = node.instr
    try:
        values = tuple(
            concrete[a] if is_reg(a) else a for a in instr.args)
    except KeyError:
        return None
    key = observed_branch_key(instr, values)
    return node.branches.get(key)
