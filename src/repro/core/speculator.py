"""The speculator: pre-execute, specialize, memoize, merge (paper §4.1).

Off the critical path, the speculator takes (transaction, predicted
future context) pairs from the multi-future predictor, runs the traced
pre-execution, synthesizes an AP path through the specialization
pipeline, and merges it into the transaction's accelerated program.

Speculation cost is accounted (§5.6 reports pre-execution + synthesis at
~12x a plain execution) and, in the simulated node, charged against a
worker pool so that APs only become available once synthesis would
really have finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.ap import AcceleratedProgram, APPath
from repro.core.memoize import build_shortcuts
from repro.core.merge import merge_path, prune_tree
from repro.core.optimize import optimize_path
from repro.core.trace import TraceResult, trace_transaction
from repro.core.translate import translate_trace
from repro.errors import SpeculationError
from repro.state.statedb import StateDB
from repro.state.world import WorldState


def synthesize_path(trace: TraceResult, path_id: int = 0,
                    context_id: int = 0,
                    pass_config=None) -> APPath:
    """Full per-trace pipeline: translate -> optimize -> APPath.

    Raises :class:`SpeculationError` when the trace uses a feature
    outside the supported subset (the transaction then simply gets no
    AP and executes normally).
    """
    translation = translate_trace(trace)
    optimize_path(translation, pass_config)
    return APPath.from_translation(translation, path_id, context_id)


@dataclass
class _PathStats:
    """Lightweight stats holder mimicking APPath for archived APs."""

    stats: object


@dataclass
class ApArchive:
    """Synthesis statistics of a retired AP (for §5.5 / Figure 15).

    Mimics the slice of the AcceleratedProgram interface the stats
    aggregator needs, without retaining the node tree.
    """

    paths: List[_PathStats]
    distinct_paths: int
    context_count: int
    shortcut_count: int

    def path_count(self) -> int:
        return self.distinct_paths

    @property
    def context_ids(self):
        return range(self.context_count)


@dataclass
class SpeculationRecord:
    """Bookkeeping for one pre-execution."""

    tx_hash: int
    context_id: int
    trace_length: int
    synthesis_cost: int
    merged: bool
    error: Optional[str] = None


@dataclass
class FutureContext:
    """One predicted future context for a transaction (paper §4.2).

    ``predecessors`` are pending transactions speculated to execute
    before the target within the same block (the "Tx order" of Figure
    5); ``header`` is the predicted next-block header.
    """

    context_id: int
    header: BlockHeader
    predecessors: Tuple[Transaction, ...] = ()

    def describe(self) -> str:
        pre = ",".join(t.short_id() for t in self.predecessors) or "-"
        return (f"FC{self.context_id}(ts={self.header.timestamp} "
                f"coinbase={self.header.coinbase:#x} pre=[{pre}])")


class Speculator:
    """Synthesizes and maintains APs for pending transactions."""

    def __init__(self, world: WorldState,
                 blockhash_fn: Optional[Callable[[int], int]] = None,
                 pass_config=None,
                 enable_memoization: bool = True,
                 memoization_strategy: str = "default") -> None:
        self.world = world
        self.blockhash_fn = blockhash_fn or (lambda n: 0)
        self.pass_config = pass_config
        self.enable_memoization = enable_memoization
        self.memoization_strategy = memoization_strategy
        self.aps: Dict[int, AcceleratedProgram] = {}
        self.records: List[SpeculationRecord] = []
        #: Synthesis stats of executed-and-dropped APs (§5.5).
        self.archive: List[ApArchive] = []
        #: Total off-critical-path work performed, in cost units (§5.6).
        self.total_speculation_cost = 0
        self._next_path_id = 0

    # -- public API ----------------------------------------------------------

    def get_ap(self, tx_hash: int) -> Optional[AcceleratedProgram]:
        return self.aps.get(tx_hash)

    def drop(self, tx_hash: int) -> None:
        """Forget a transaction's AP (e.g. after it was executed),
        archiving its synthesis statistics for §5.5 reporting."""
        ap = self.aps.pop(tx_hash, None)
        if ap is not None and ap.paths:
            self.archive.append(ApArchive(
                paths=[_PathStats(p.stats) for p in ap.paths],
                distinct_paths=ap.path_count(),
                context_count=len(ap.context_ids),
                shortcut_count=ap.shortcut_count,
            ))

    def speculate(self, tx: Transaction,
                  context: FutureContext) -> Optional[APPath]:
        """Pre-execute ``tx`` in ``context`` and merge the resulting path.

        Returns the APPath (None if synthesis failed).  The speculative
        overlay state is built on the committed world and discarded.
        """
        if tx.to == 0:
            # Contract deployments run init code and install new
            # accounts — outside the specialized subset; they execute
            # through the normal path (and are rare on the wire).
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=0, merged=False,
                error="deployment transactions are not specialized"))
            return None
        state = StateDB(self.world)
        # Apply speculated predecessors to build the context state.
        predecessor_cost = 0
        for predecessor in context.predecessors:
            from repro.evm.interpreter import EVM  # local: cycle-free
            evm = EVM(state, context.header, predecessor,
                      blockhash_fn=self.blockhash_fn)
            evm.execute_transaction()
            predecessor_cost += evm.instruction_count * costmodel.EVM_STEP

        trace = trace_transaction(state, context.header, tx,
                                  blockhash_fn=self.blockhash_fn)
        trace.context_id = context.context_id
        if trace.result.error:
            # Envelope-level failure (bad nonce / unaffordable gas) in
            # this speculated context: no bytecode ran, so there is
            # nothing to specialize — and the accelerator's native
            # envelope cannot be guarded by an AP.  Skip this future.
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=0,
                merged=False, error=f"envelope: {trace.result.error}"))
            return None
        execution_cost = (len(trace.steps) * costmodel.EVM_STEP
                          + state.disk.stats.cost_units)
        synthesis_cost = int(
            execution_cost * costmodel.SPECULATION_COST_FACTOR
        ) + predecessor_cost
        self.total_speculation_cost += synthesis_cost

        path_id = self._next_path_id
        self._next_path_id += 1
        try:
            path = synthesize_path(trace, path_id=path_id,
                                   context_id=context.context_id,
                                   pass_config=self.pass_config)
        except SpeculationError as exc:
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=len(trace.steps), synthesis_cost=synthesis_cost,
                merged=False, error=str(exc)))
            return None

        ap = self.aps.get(tx.hash)
        if ap is None:
            ap = AcceleratedProgram(tx.hash)
            self.aps[tx.hash] = ap
        merged = merge_path(ap, path)
        if merged:
            prune_tree(ap)
            if self.enable_memoization:
                build_shortcuts(ap, self.memoization_strategy)
        self.records.append(SpeculationRecord(
            tx_hash=tx.hash, context_id=context.context_id,
            trace_length=len(trace.steps), synthesis_cost=synthesis_cost,
            merged=merged))
        return path

    def speculate_many(self, tx: Transaction,
                       contexts: Iterable[FutureContext]) -> int:
        """Speculate on several futures; returns merged-path count."""
        merged = 0
        for context in contexts:
            if self.speculate(tx, context) is not None:
                merged += 1
        return merged
