"""The speculator: pre-execute, specialize, memoize, merge (paper §4.1).

Off the critical path, the speculator takes (transaction, predicted
future context) pairs from the multi-future predictor, runs the traced
pre-execution, synthesizes an AP path through the specialization
pipeline, and merges it into the transaction's accelerated program.

Speculation cost is accounted (§5.6 reports pre-execution + synthesis at
~12x a plain execution) and, in the simulated node, charged against a
worker pool so that APs only become available once synthesis would
really have finished.

Two redundancy-elimination layers sit between the predictor and the
pipeline:

* a **prefix cache** (:mod:`repro.core.prefix_cache`): distinct
  predecessor prefixes are materialized once per head as frozen
  copy-on-write :class:`StateDB` forks and shared across contexts;
* **synthesis dedup**: traces are fingerprinted
  (:func:`repro.core.trace.trace_fingerprint`) and an identical
  already-merged path is cloned instead of re-synthesized.

Both layers change what the speculator *pays*, never what it produces:
traces, APs, and Merkle roots are byte-identical with the layers on or
off.  Each :class:`SpeculationRecord` therefore carries two costs — the
``synthesis_cost`` actually paid (§5.6 accounting reflects the saving)
and the ``logical_cost`` an uncached speculator would have paid, which
the worker pool schedules by so AP readiness stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.ap import AcceleratedProgram, APPath
from repro.core.memoize import build_shortcuts
from repro.core.merge import merge_path, prune_tree
from repro.core.optimize import optimize_path
from repro.core.prefix_cache import PrefixCache, PrefixEntry, context_key
from repro.core.trace import TraceResult, trace_fingerprint, trace_transaction
from repro.core.translate import translate_trace
from repro.errors import SpeculationError
from repro.state.statedb import StateDB
from repro.state.world import WorldState


def synthesize_path(trace: TraceResult, path_id: int = 0,
                    context_id: int = 0,
                    pass_config=None) -> APPath:
    """Full per-trace pipeline: translate -> optimize -> APPath.

    Raises :class:`SpeculationError` when the trace uses a feature
    outside the supported subset (the transaction then simply gets no
    AP and executes normally).
    """
    translation = translate_trace(trace)
    optimize_path(translation, pass_config)
    return APPath.from_translation(translation, path_id, context_id)


@dataclass
class _PathStats:
    """Lightweight stats holder mimicking APPath for archived APs."""

    stats: object


@dataclass
class ApArchive:
    """Synthesis statistics of a retired AP (for §5.5 / Figure 15).

    Mimics the slice of the AcceleratedProgram interface the stats
    aggregator needs, without retaining the node tree.
    """

    paths: List[_PathStats]
    distinct_paths: int
    context_count: int
    shortcut_count: int

    def path_count(self) -> int:
        return self.distinct_paths

    @property
    def context_ids(self):
        return range(self.context_count)


@dataclass
class SpeculationRecord:
    """Bookkeeping for one pre-execution."""

    tx_hash: int
    context_id: int
    trace_length: int
    #: Off-path work actually paid, after prefix-cache and dedup savings.
    synthesis_cost: int
    merged: bool
    error: Optional[str] = None
    #: What an uncached, dedup-free speculator would have paid (the
    #: seed's accounting); the worker pool schedules by this.
    logical_cost: int = 0
    #: True when synthesis was skipped via trace-fingerprint dedup.
    deduped: bool = False
    #: Predecessors actually executed vs. served by the prefix cache.
    preds_executed: int = 0
    preds_cached: int = 0


@dataclass
class _PrefixOutcome:
    """Cost summary of materializing one context's predecessor prefix."""

    #: Instruction count / I/O units of the *full* prefix, cached or not
    #: (inputs to the logical cost).
    instructions_full: int = 0
    io_full: int = 0
    #: Cost units actually paid executing the uncached suffix.
    paid: int = 0
    executed: int = 0
    cached: int = 0


@dataclass
class FutureContext:
    """One predicted future context for a transaction (paper §4.2).

    ``predecessors`` are pending transactions speculated to execute
    before the target within the same block (the "Tx order" of Figure
    5); ``header`` is the predicted next-block header.
    """

    context_id: int
    header: BlockHeader
    predecessors: Tuple[Transaction, ...] = ()

    def describe(self) -> str:
        pre = ",".join(t.short_id() for t in self.predecessors) or "-"
        return (f"FC{self.context_id}(ts={self.header.timestamp} "
                f"coinbase={self.header.coinbase:#x} pre=[{pre}])")


class Speculator:
    """Synthesizes and maintains APs for pending transactions."""

    def __init__(self, world: WorldState,
                 blockhash_fn: Optional[Callable[[int], int]] = None,
                 pass_config=None,
                 enable_memoization: bool = True,
                 memoization_strategy: str = "default",
                 enable_prefix_cache: bool = True,
                 enable_synth_dedup: bool = True,
                 prefix_cache_capacity: int = 1024) -> None:
        self.world = world
        self.blockhash_fn = blockhash_fn or (lambda n: 0)
        self.pass_config = pass_config
        self.enable_memoization = enable_memoization
        self.memoization_strategy = memoization_strategy
        self.enable_synth_dedup = enable_synth_dedup
        self.prefix_cache = PrefixCache(
            capacity=prefix_cache_capacity, enabled=enable_prefix_cache)
        self.aps: Dict[int, AcceleratedProgram] = {}
        self.records: List[SpeculationRecord] = []
        #: Synthesis stats of executed-and-dropped APs (§5.5).
        self.archive: List[ApArchive] = []
        #: Total off-critical-path work performed, in cost units (§5.6),
        #: net of prefix-cache and dedup savings.
        self.total_speculation_cost = 0
        #: Total work an uncached speculator would have performed; the
        #: node's worker pool schedules by this so AP readiness (and
        #: with it Table 2/3) is independent of the caching layers.
        self.total_logical_cost = 0
        #: Synthesis-dedup counters and per-tx fingerprint index.
        self.dedup_hits = 0
        self.dedup_misses = 0
        self.dedup_cost_saved = 0
        self._dedup: Dict[int, Dict[str, APPath]] = {}
        self._next_path_id = 0

    # -- public API ----------------------------------------------------------

    def get_ap(self, tx_hash: int) -> Optional[AcceleratedProgram]:
        return self.aps.get(tx_hash)

    def drop(self, tx_hash: int) -> None:
        """Forget a transaction's AP (e.g. after it was executed),
        archiving its synthesis statistics for §5.5 reporting."""
        self._dedup.pop(tx_hash, None)
        ap = self.aps.pop(tx_hash, None)
        if ap is not None and ap.paths:
            self.archive.append(ApArchive(
                paths=[_PathStats(p.stats) for p in ap.paths],
                distinct_paths=ap.path_count(),
                context_count=len(ap.context_ids),
                shortcut_count=ap.shortcut_count,
            ))

    def invalidate_prefixes(self, reason: str = "") -> int:
        """Drop every cached prefix (new canonical head or reorg)."""
        return self.prefix_cache.invalidate(reason)

    # -- context materialization --------------------------------------------

    def _materialize_context(self, context: FutureContext
                             ) -> Tuple[StateDB, _PrefixOutcome]:
        """Build the speculative pre-state for ``context``.

        Returns a private (forked) StateDB positioned after the
        context's predecessors, plus the prefix cost summary.  The
        longest cached predecessor prefix is reused; every extension is
        cached for later contexts.  With the cache disabled the same
        fork chain is built but never stored, so the I/O classification
        (and hence the trace) is identical in both modes.
        """
        outcome = _PrefixOutcome()
        predecessors = context.predecessors
        if not predecessors:
            return StateDB(self.world), outcome
        from repro.evm.interpreter import EVM  # local: cycle-free

        cache = self.prefix_cache
        hashes = tuple(p.hash for p in predecessors)
        version = self.world.version
        header = context.header
        entry: Optional[PrefixEntry] = None
        start = 0
        if cache.enabled:
            for length in range(len(predecessors), 0, -1):
                found = cache.lookup(
                    context_key(version, header, hashes[:length]))
                if found is not None:
                    entry, start = found, length
                    break
            if start:
                cache.hits += 1
            else:
                cache.misses += 1
        if entry is not None:
            outcome.instructions_full = entry.instructions
            outcome.io_full = entry.io_units
            outcome.cached = start
            cache.pred_execs_avoided += start
            cache.pred_instructions_avoided += entry.instructions

        parent: Optional[StateDB] = entry.state if entry is not None else None
        for index in range(start, len(predecessors)):
            child = parent.fork() if parent is not None \
                else StateDB(self.world)
            evm = EVM(child, header, predecessors[index],
                      blockhash_fn=self.blockhash_fn)
            evm.execute_transaction()
            io_units = child.disk.stats.cost_units
            outcome.instructions_full += evm.instruction_count
            outcome.io_full += io_units
            outcome.paid += (evm.instruction_count * costmodel.EVM_STEP
                             + io_units)
            outcome.executed += 1
            cache.pred_execs += 1
            cache.pred_instructions += evm.instruction_count
            key = context_key(version, header, hashes[:index + 1])
            cache.note_execution(key, evm.instruction_count)
            cache.store(
                key,
                PrefixEntry(child, outcome.instructions_full,
                            outcome.io_full))
            parent = child
        return parent.fork(), outcome

    # -- speculation ---------------------------------------------------------

    def speculate(self, tx: Transaction,
                  context: FutureContext) -> Optional[APPath]:
        """Pre-execute ``tx`` in ``context`` and merge the resulting path.

        Returns the APPath (None if synthesis failed).  The speculative
        overlay state is built on the committed world and discarded.
        """
        if tx.to == 0:
            # Contract deployments run init code and install new
            # accounts — outside the specialized subset; they execute
            # through the normal path (and are rare on the wire).
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=0, merged=False,
                error="deployment transactions are not specialized"))
            return None
        state, prefix = self._materialize_context(context)

        trace = trace_transaction(state, context.header, tx,
                                  blockhash_fn=self.blockhash_fn)
        trace.context_id = context.context_id
        if trace.result.error:
            # Envelope-level failure (bad nonce / unaffordable gas) in
            # this speculated context: no bytecode ran, so there is
            # nothing to specialize — and the accelerator's native
            # envelope cannot be guarded by an AP.  Skip this future.
            # Only the predecessor work actually performed is charged;
            # the logical (scheduling) cost stays zero as before.
            self.total_speculation_cost += prefix.paid
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=prefix.paid,
                merged=False, error=f"envelope: {trace.result.error}",
                preds_executed=prefix.executed,
                preds_cached=prefix.cached))
            return None
        target_cost = (len(trace.steps) * costmodel.EVM_STEP
                       + state.disk.stats.cost_units)
        logical_cost = int(
            (target_cost + prefix.io_full)
            * costmodel.SPECULATION_COST_FACTOR
        ) + prefix.instructions_full * costmodel.EVM_STEP
        self.total_logical_cost += logical_cost

        fingerprint: Optional[str] = None
        fingerprint_cost = 0
        cached_path: Optional[APPath] = None
        if self.enable_synth_dedup:
            fingerprint = trace_fingerprint(trace)
            fingerprint_cost = len(trace.steps) * costmodel.FINGERPRINT_STEP
            cached_path = self._dedup.get(tx.hash, {}).get(fingerprint)
            if cached_path is None:
                self.dedup_misses += 1

        path_id = self._next_path_id
        self._next_path_id += 1
        if cached_path is not None:
            # Identical trace already synthesized and merged for this
            # transaction: clone the path (fresh ids, shared immutable
            # instruction/stats payload) instead of re-running
            # translate/optimize.  Paying target_cost models the
            # pre-execution that produced the trace; the ~11x synthesis
            # surcharge is what dedup eliminates.
            self.dedup_hits += 1
            full_synthesis = int(
                target_cost * costmodel.SPECULATION_COST_FACTOR)
            actual_cost = prefix.paid + target_cost + fingerprint_cost
            self.dedup_cost_saved += full_synthesis - target_cost \
                - fingerprint_cost
            path = replace(cached_path, path_id=path_id,
                           context_id=context.context_id)
        else:
            actual_cost = prefix.paid + int(
                target_cost * costmodel.SPECULATION_COST_FACTOR
            ) + fingerprint_cost
            try:
                path = synthesize_path(trace, path_id=path_id,
                                       context_id=context.context_id,
                                       pass_config=self.pass_config)
            except SpeculationError as exc:
                self.total_speculation_cost += actual_cost
                self.records.append(SpeculationRecord(
                    tx_hash=tx.hash, context_id=context.context_id,
                    trace_length=len(trace.steps),
                    synthesis_cost=actual_cost,
                    logical_cost=logical_cost,
                    merged=False, error=str(exc),
                    preds_executed=prefix.executed,
                    preds_cached=prefix.cached))
                return None
            if fingerprint is not None:
                self._dedup.setdefault(tx.hash, {})[fingerprint] = path
        self.total_speculation_cost += actual_cost

        ap = self.aps.get(tx.hash)
        if ap is None:
            ap = AcceleratedProgram(tx.hash)
            self.aps[tx.hash] = ap
        merged = merge_path(ap, path)
        if merged:
            prune_tree(ap)
            if self.enable_memoization:
                build_shortcuts(ap, self.memoization_strategy)
        self.records.append(SpeculationRecord(
            tx_hash=tx.hash, context_id=context.context_id,
            trace_length=len(trace.steps), synthesis_cost=actual_cost,
            logical_cost=logical_cost, merged=merged,
            deduped=cached_path is not None,
            preds_executed=prefix.executed,
            preds_cached=prefix.cached))
        return path

    def speculate_many(self, tx: Transaction,
                       contexts: Iterable[FutureContext]) -> int:
        """Speculate on several futures; returns merged-path count.

        Only paths :func:`merge_path` actually accepted are counted —
        a synthesized path whose merge failed does not contribute.
        """
        merged = 0
        for context in contexts:
            path = self.speculate(tx, context)
            if path is not None and self.records[-1].merged:
                merged += 1
        return merged
