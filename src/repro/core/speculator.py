"""The speculator: pre-execute, specialize, memoize, merge (paper §4.1).

Off the critical path, the speculator takes (transaction, predicted
future context) pairs from the multi-future predictor, runs the traced
pre-execution, synthesizes an AP path through the specialization
pipeline, and merges it into the transaction's accelerated program.

Speculation cost is accounted (§5.6 reports pre-execution + synthesis at
~12x a plain execution) and, in the simulated node, charged against a
worker pool so that APs only become available once synthesis would
really have finished.

Two redundancy-elimination layers sit between the predictor and the
pipeline:

* a **prefix cache** (:mod:`repro.core.prefix_cache`): distinct
  predecessor prefixes are materialized once per head as frozen
  copy-on-write :class:`StateDB` forks and shared across contexts;
* **synthesis dedup**: traces are fingerprinted
  (:func:`repro.core.trace.trace_fingerprint`) and an identical
  already-merged path is cloned instead of re-synthesized.

Both layers change what the speculator *pays*, never what it produces:
traces, APs, and Merkle roots are byte-identical with the layers on or
off.  Each :class:`SpeculationRecord` therefore carries two costs — the
``synthesis_cost`` actually paid (§5.6 accounting reflects the saving)
and the ``logical_cost`` an uncached speculator would have paid, which
the worker pool schedules by so AP readiness stays deterministic.

Every stage is instrumented through :mod:`repro.obs`: counters live
under the speculator's scope (``speculator.*``, ``merge.*``,
``prefix_exec.*``) and each pre-execution emits a per-transaction span
tree (``speculate`` → ``materialize_prefix`` / ``pre_execute`` /
``fingerprint`` / ``synthesize`` / ``merge``), all denominated in
logical cost units so traces are deterministic.

The synthesis-dedup index stores *detached* copies of merged paths
(fresh stats / read-set / write-set containers): later mutation of a
merged path — :func:`prune_tree` rewriting the AP, stats aggregation,
ablation experiments — can never leak into a future dedup clone.  The
index is bounded per transaction (LRU) and cleared on drop/discard and
on reorgs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.ap import AcceleratedProgram, APPath
from repro.core.memoize import build_shortcuts
from repro.core.merge import MergeMetrics, merge_path, prune_tree
from repro.core.optimize import optimize_path
from repro.core.prefix_cache import PrefixCache, PrefixEntry, context_key
from repro.core.trace import TraceResult, trace_fingerprint, trace_transaction
from repro.core.translate import translate_trace
from repro.errors import SpeculationError
from repro.evm.interpreter import EvmMetrics
from repro.faults.guard import SpeculationGuard
from repro.faults.injector import (
    NULL_INJECTOR,
    corrupt_guard_branch,
    corrupt_shortcut,
)
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import NullTracer
from repro.state.statedb import StateDB
from repro.state.world import WorldState


def synthesize_path(trace: TraceResult, path_id: int = 0,
                    context_id: int = 0,
                    pass_config=None) -> APPath:
    """Full per-trace pipeline: translate -> optimize -> APPath.

    Raises :class:`SpeculationError` when the trace uses a feature
    outside the supported subset (the transaction then simply gets no
    AP and executes normally).
    """
    translation = translate_trace(trace)
    optimize_path(translation, pass_config)
    return APPath.from_translation(translation, path_id, context_id)


@dataclass
class _PathStats:
    """Lightweight stats holder mimicking APPath for archived APs."""

    stats: object


@dataclass
class ApArchive:
    """Synthesis statistics of a retired AP (for §5.5 / Figure 15).

    Mimics the slice of the AcceleratedProgram interface the stats
    aggregator needs, without retaining the node tree.
    """

    paths: List[_PathStats]
    distinct_paths: int
    context_count: int
    shortcut_count: int

    def path_count(self) -> int:
        return self.distinct_paths

    @property
    def context_ids(self):
        return range(self.context_count)


@dataclass
class SpeculationRecord:
    """Bookkeeping for one pre-execution."""

    tx_hash: int
    context_id: int
    trace_length: int
    #: Off-path work actually paid, after prefix-cache and dedup savings.
    synthesis_cost: int
    merged: bool
    error: Optional[str] = None
    #: What an uncached, dedup-free speculator would have paid (the
    #: seed's accounting); the worker pool schedules by this.
    logical_cost: int = 0
    #: True when synthesis was skipped via trace-fingerprint dedup.
    deduped: bool = False
    #: Predecessors actually executed vs. served by the prefix cache.
    preds_executed: int = 0
    preds_cached: int = 0
    #: True when this speculation died to a contained fault (injected
    #: or unexpected) rather than an expected pipeline outcome.
    faulted: bool = False
    #: Predicted witness footprint of the synthesized path: how many
    #: constraint checks (reads) and delta entries (writes) a satisfied
    #: execution of it will record.
    read_set_size: int = 0
    write_set_size: int = 0


@dataclass
class _PrefixOutcome:
    """Cost summary of materializing one context's predecessor prefix."""

    #: Instruction count / I/O units of the *full* prefix, cached or not
    #: (inputs to the logical cost).
    instructions_full: int = 0
    io_full: int = 0
    #: Cost units actually paid executing the uncached suffix.
    paid: int = 0
    executed: int = 0
    cached: int = 0


@dataclass
class FutureContext:
    """One predicted future context for a transaction (paper §4.2).

    ``predecessors`` are pending transactions speculated to execute
    before the target within the same block (the "Tx order" of Figure
    5); ``header`` is the predicted next-block header.
    """

    context_id: int
    header: BlockHeader
    predecessors: Tuple[Transaction, ...] = ()

    def describe(self) -> str:
        pre = ",".join(t.short_id() for t in self.predecessors) or "-"
        return (f"FC{self.context_id}(ts={self.header.timestamp} "
                f"coinbase={self.header.coinbase:#x} pre=[{pre}])")


def _detach_path(path: APPath) -> APPath:
    """A copy of ``path`` sharing only immutable payload.

    The instruction lists and return layout are treated as frozen by
    every consumer; the stats object and the read/write/concrete maps
    are mutable and get fresh containers, so mutating one copy (e.g. a
    merged path's stats during aggregation) never aliases the other.
    """
    return replace(
        path,
        stats=replace(path.stats),
        concrete=dict(path.concrete),
        read_set=dict(path.read_set),
        write_set=dict(path.write_set),
    )


class Speculator:
    """Synthesizes and maintains APs for pending transactions."""

    def __init__(self, world: WorldState,
                 blockhash_fn: Optional[Callable[[int], int]] = None,
                 pass_config=None,
                 enable_memoization: bool = True,
                 memoization_strategy: str = "default",
                 enable_prefix_cache: bool = True,
                 enable_synth_dedup: bool = True,
                 prefix_cache_capacity: int = 1024,
                 dedup_capacity_per_tx: int = 16,
                 memo_capacity: int = 4096,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None,
                 injector=None,
                 guard: Optional[SpeculationGuard] = None,
                 jit=None) -> None:
        self.world = world
        self.blockhash_fn = blockhash_fn or (lambda n: 0)
        self.pass_config = pass_config
        self.enable_memoization = enable_memoization
        self.memoization_strategy = memoization_strategy
        self.enable_synth_dedup = enable_synth_dedup
        registry = registry or get_registry()
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Chaos layer (:mod:`repro.faults`): fault source + containment.
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.guard = guard if guard is not None \
            else SpeculationGuard(registry=registry)
        # The guard's breaker cool-downs and retry backoffs tick in the
        # speculator's deterministic logical-cost currency.
        self.guard.clock = lambda: self.total_logical_cost
        self.guard.charge_cost = self._charge_backoff
        #: Optional :class:`repro.evm.jit.tier.JitTier` — the
        #: trace-guided specialization compiler.  The speculator owns
        #: the compile side (hot traces are known here); the
        #: accelerator owns the execute side.
        self.jit = jit
        self.prefix_cache = PrefixCache(
            capacity=prefix_cache_capacity, enabled=enable_prefix_cache,
            registry=registry,
            injector=self.injector if self.injector.enabled else None,
            jit=jit)
        #: The memo table: tx hash -> AcceleratedProgram, LRU-ordered.
        #: Bounded by ``memo_capacity`` (the long-sim unbounded-growth
        #: fix): recency updates happen at deterministic points of the
        #: speculation/execution schedule, so eviction order is a pure
        #: function of the workload — two same-seed runs evict the same
        #: transactions at the same cost-unit times.
        self.aps: "OrderedDict[int, AcceleratedProgram]" = OrderedDict()
        self.memo_capacity = memo_capacity
        #: Durability hook (:mod:`repro.recovery`): called as
        #: ``memo_sink(event, tx_hash)`` for ``insert`` / ``evict`` /
        #: ``drop`` / ``discard`` so the journal can record the memo
        #: table's evolution.  No-op by default.
        self.memo_sink: Optional[Callable[[str, int], None]] = None
        self.records: List[SpeculationRecord] = []
        #: Synthesis stats of executed-and-dropped APs (§5.5).
        self.archive: List[ApArchive] = []
        # -- instruments -------------------------------------------------
        obs = registry.scope("speculator")
        self._obs = obs
        self.c_speculations = obs.counter("speculations")
        self.c_merged = obs.counter("merged")
        self.c_errors = obs.counter("errors")
        #: Total off-critical-path work performed, in cost units (§5.6),
        #: net of prefix-cache and dedup savings.
        self.c_actual_cost = obs.counter("actual_cost")
        #: Total work an uncached speculator would have performed; the
        #: node's worker pool schedules by this so AP readiness (and
        #: with it Table 2/3) is independent of the caching layers.
        self.c_logical_cost = obs.counter("logical_cost")
        #: Synthesis-dedup counters.
        self.c_dedup_hits = obs.counter("dedup_hits")
        self.c_dedup_misses = obs.counter("dedup_misses")
        self.c_dedup_cost_saved = obs.counter("dedup_cost_saved")
        self.c_dedup_evictions = obs.counter("dedup_evictions")
        self.h_trace_len = obs.histogram("trace_len")
        memo_obs = registry.scope("memo")
        self.c_memo_inserts = memo_obs.counter("inserts")
        self.c_memo_evictions = memo_obs.counter("evictions")
        self.g_memo_size = memo_obs.gauge("size")
        self._merge_metrics = MergeMetrics(registry.scope("merge"))
        self._prefix_evm = EvmMetrics(registry.scope("prefix_exec"))
        #: Per-tx fingerprint index: tx -> (fingerprint -> detached
        #: APPath), LRU-bounded per transaction, cleared on
        #: drop/discard/reorg.
        self._dedup: Dict[int, "OrderedDict[str, APPath]"] = {}
        self.dedup_capacity_per_tx = dedup_capacity_per_tx
        self._next_path_id = 0

    # -- legacy counter views (read-only ints) ----------------------------

    @property
    def total_speculation_cost(self) -> int:
        return self.c_actual_cost.value

    @property
    def total_logical_cost(self) -> int:
        return self.c_logical_cost.value

    @property
    def dedup_hits(self) -> int:
        return self.c_dedup_hits.value

    @property
    def dedup_misses(self) -> int:
        return self.c_dedup_misses.value

    @property
    def dedup_cost_saved(self) -> int:
        return self.c_dedup_cost_saved.value

    # -- chaos plumbing --------------------------------------------------

    def _charge_backoff(self, units: int) -> None:
        """Retry backoff is real (simulated) work: it delays the worker
        (logical cost) and is billed to §5.6 overhead (actual cost)."""
        self.c_logical_cost.inc(units)
        self.c_actual_cost.inc(units)

    def _storage_hook(self) -> None:
        self.injector.maybe_raise("storage.read")

    def _build_shortcuts_contained(self, ap: AcceleratedProgram) -> None:
        """Memoization is a pure bonus: a fault while building
        shortcuts is contained locally (the AP simply keeps fewer or no
        shortcuts) instead of failing the whole speculation."""
        def build() -> None:
            self.injector.maybe_raise("memoize.build")
            build_shortcuts(ap, self.memoization_strategy)
        self.guard.run("memoize.build", build, count_fallback=False)

    def _jit_compile_contained(self, ap: AcceleratedProgram,
                               tx: Transaction, deduped: bool) -> None:
        """Specialization is a pure bonus, exactly like shortcuts: a
        fault while compiling is contained locally (the AP simply stays
        on the interpreted tier) instead of failing the speculation.
        ``jit.compile`` is a custom chaos site: with no rule targeting
        it the injector's early return leaves every counter untouched."""
        if self.jit is None or not self.jit.enabled:
            return
        def build() -> None:
            self.injector.maybe_raise("jit.compile", tx=tx.hash,
                                      contract=tx.to)
            self.jit.compile(ap, deduped=deduped)
        self.guard.run("jit.compile", build, count_fallback=False)

    def _maybe_corrupt(self, ap: AcceleratedProgram,
                       tx: Transaction) -> None:
        """Payload-corruption sites (safe by construction): a corrupted
        shortcut key can only miss; a corrupted guard branch key can
        only raise ``ConstraintViolation`` and fall back — neither can
        change committed state."""
        if not self.injector.enabled:
            return
        if self.injector.evaluate("memoize.corrupt", tx=tx.hash,
                                  contract=tx.to) is not None:
            corrupt_shortcut(ap, self.injector.rng("memoize.corrupt"))
        if self.injector.evaluate("ap.corrupt", tx=tx.hash,
                                  contract=tx.to) is not None:
            corrupt_guard_branch(ap, self.injector.rng("ap.corrupt"))

    # -- public API ----------------------------------------------------------

    def get_ap(self, tx_hash: int) -> Optional[AcceleratedProgram]:
        ap = self.aps.get(tx_hash)
        if ap is not None:
            self.aps.move_to_end(tx_hash)
        return ap

    def _memo_event(self, event: str, tx_hash: int) -> None:
        if self.memo_sink is not None:
            self.memo_sink(event, tx_hash)

    def _archive_ap(self, ap: AcceleratedProgram) -> None:
        if ap.paths:
            self.archive.append(ApArchive(
                paths=[_PathStats(p.stats) for p in ap.paths],
                distinct_paths=ap.path_count(),
                context_count=len(ap.context_ids),
                shortcut_count=ap.shortcut_count,
            ))

    def _memo_insert(self, tx_hash: int, ap: AcceleratedProgram) -> None:
        """Insert a fresh AP, LRU-evicting past ``memo_capacity``.

        An evicted AP is archived like a dropped one (its synthesis
        happened; §5.5 must still see it) — the transaction simply
        loses its acceleration and, if it is ever packed, executes the
        plain path: eviction can never change committed state.
        """
        self.aps[tx_hash] = ap
        self.aps.move_to_end(tx_hash)
        self.c_memo_inserts.inc()
        self._memo_event("insert", tx_hash)
        while len(self.aps) > self.memo_capacity:
            victim_hash, victim = self.aps.popitem(last=False)
            self._dedup.pop(victim_hash, None)
            self.prefix_cache.evict_tx(victim_hash)
            self._archive_ap(victim)
            self.c_memo_evictions.inc()
            self._memo_event("evict", victim_hash)
        self.g_memo_size.set(len(self.aps))

    def drop(self, tx_hash: int, evict_prefixes: bool = True) -> None:
        """Forget a transaction's AP (e.g. after it was executed),
        archiving its synthesis statistics for §5.5 reporting.

        ``evict_prefixes=False`` skips the per-transaction prefix-cache
        sweep; it is only correct when the caller invalidates the whole
        cache immediately afterwards (the node's block loop does — the
        commit bumps the world version and every prefix entry dies with
        it), keeping that sweep off the critical path.
        """
        self._dedup.pop(tx_hash, None)
        if evict_prefixes:
            self.prefix_cache.evict_tx(tx_hash)
        ap = self.aps.pop(tx_hash, None)
        if ap is not None:
            self._archive_ap(ap)
            self.g_memo_size.set(len(self.aps))
            self._memo_event("drop", tx_hash)

    def discard(self, tx_hash: int) -> None:
        """Forget a transaction's AP *and* its dedup fingerprints
        without archiving (mid-reorg abandonment: the AP may refer to a
        head that no longer exists, so its stats must not pollute §5.5
        aggregates and its paths must never be cloned again)."""
        self._dedup.pop(tx_hash, None)
        self.prefix_cache.evict_tx(tx_hash)
        if self.aps.pop(tx_hash, None) is not None:
            self.g_memo_size.set(len(self.aps))
            self._memo_event("discard", tx_hash)

    def invalidate_prefixes(self, reason: str = "") -> int:
        """Drop every cached prefix (new canonical head or reorg)."""
        return self.prefix_cache.invalidate(reason)

    def on_reorg(self) -> int:
        """Reorg handling: the world's contents were restored in place,
        so both redundancy-elimination indexes are stale — cached
        prefixes reference dead state forks and cached dedup paths were
        synthesized against contexts of the abandoned branch.  Drops
        both; returns the number of prefix entries dropped."""
        self._dedup.clear()
        return self.invalidate_prefixes("reorg")

    def dedup_index_size(self) -> int:
        """Total fingerprints currently held across all transactions."""
        return sum(len(entry) for entry in self._dedup.values())

    # -- context materialization --------------------------------------------

    def _materialize_context(self, context: FutureContext
                             ) -> Tuple[StateDB, _PrefixOutcome]:
        """Build the speculative pre-state for ``context``.

        Returns a private (forked) StateDB positioned after the
        context's predecessors, plus the prefix cost summary.  The
        longest cached predecessor prefix is reused; every extension is
        cached for later contexts.  With the cache disabled the same
        fork chain is built but never stored, so the I/O classification
        (and hence the trace) is identical in both modes.
        """
        outcome = _PrefixOutcome()
        hook = self._storage_hook if self.injector.enabled else None
        predecessors = context.predecessors
        if not predecessors:
            state = StateDB(self.world)
            state.disk.fault_hook = hook
            return state, outcome
        from repro.evm.interpreter import EVM  # local: cycle-free

        cache = self.prefix_cache
        hashes = tuple(p.hash for p in predecessors)
        version = self.world.version
        header = context.header
        entry: Optional[PrefixEntry] = None
        start = 0
        if cache.enabled:
            for length in range(len(predecessors), 0, -1):
                found = cache.lookup(
                    context_key(version, header, hashes[:length]))
                if found is not None:
                    entry, start = found, length
                    break
            if start:
                cache.c_hits.inc()
            else:
                cache.c_misses.inc()
        if entry is not None:
            outcome.instructions_full = entry.instructions
            outcome.io_full = entry.io_units
            outcome.cached = start
            cache.c_pred_execs_avoided.inc(start)
            cache.c_pred_instructions_avoided.inc(entry.instructions)

        parent: Optional[StateDB] = entry.state if entry is not None else None
        for index in range(start, len(predecessors)):
            child = parent.fork() if parent is not None \
                else StateDB(self.world)
            child.disk.fault_hook = hook
            evm = EVM(child, header, predecessors[index],
                      blockhash_fn=self.blockhash_fn,
                      obs=self._prefix_evm)
            evm.execute_transaction()
            io_units = child.disk.stats.cost_units
            outcome.instructions_full += evm.instruction_count
            outcome.io_full += io_units
            outcome.paid += (evm.instruction_count * costmodel.EVM_STEP
                             + io_units)
            outcome.executed += 1
            cache.c_pred_execs.inc()
            cache.c_pred_instructions.inc(evm.instruction_count)
            key = context_key(version, header, hashes[:index + 1])
            cache.note_execution(key, evm.instruction_count)
            cache.store(
                key,
                PrefixEntry(child, outcome.instructions_full,
                            outcome.io_full))
            parent = child
        state = parent.fork()
        state.disk.fault_hook = hook
        return state, outcome

    # -- dedup index -----------------------------------------------------

    def _dedup_lookup(self, tx_hash: int,
                      fingerprint: str) -> Optional[APPath]:
        index = self._dedup.get(tx_hash)
        if index is None:
            return None
        path = index.get(fingerprint)
        if path is not None:
            index.move_to_end(fingerprint)
        return path

    def _dedup_store(self, tx_hash: int, fingerprint: str,
                     path: APPath) -> None:
        index = self._dedup.get(tx_hash)
        if index is None:
            index = self._dedup[tx_hash] = OrderedDict()
        # Detach: the merged path's mutable parts (stats, sets) keep
        # evolving with the AP; the archived copy must not alias them.
        index[fingerprint] = _detach_path(path)
        index.move_to_end(fingerprint)
        while len(index) > self.dedup_capacity_per_tx:
            index.popitem(last=False)
            self.c_dedup_evictions.inc()

    # -- speculation ---------------------------------------------------------

    def speculate(self, tx: Transaction,
                  context: FutureContext) -> Optional[APPath]:
        """Pre-execute ``tx`` in ``context`` and merge the resulting path.

        Returns the APPath (None if synthesis failed).  The speculative
        overlay state is built on the committed world and discarded.

        Containment boundary: *any* exception a stage raises — injected
        or a genuine bug — is absorbed by the guard here, recorded as a
        failed (``faulted``) :class:`SpeculationRecord`, and reported to
        the per-contract circuit breaker.  One broken context can never
        abort a batch or escape to the node; transient storage faults
        are retried with cost-unit backoff first.
        """
        with self.tracer.span("speculate", tx=tx.hash,
                              context=context.context_id) as root_span:
            path, faulted = self.guard.run(
                "speculate",
                lambda: self._speculate(tx, context, root_span),
                fallback=None,
                contract=tx.to)
            if faulted:
                # Stages append their record before returning, so an
                # escaped exception means no record exists yet for this
                # context — write the failure down.
                self.c_errors.inc()
                root_span.set(outcome="faulted")
                if not self.guard.last_injected:
                    # A *real* bug may have died mid-merge and left the
                    # AP tree half-rewritten: discard it defensively
                    # (injected faults fire before any mutation, so the
                    # AP stays usable for those).
                    self.discard(tx.hash)
                self.records.append(SpeculationRecord(
                    tx_hash=tx.hash, context_id=context.context_id,
                    trace_length=0, synthesis_cost=0, merged=False,
                    error=self.guard.last_error, faulted=True))
            return path

    def _speculate(self, tx: Transaction, context: FutureContext,
                   root_span) -> Optional[APPath]:
        self.c_speculations.inc()
        if tx.to == 0:
            # Contract deployments run init code and install new
            # accounts — outside the specialized subset; they execute
            # through the normal path (and are rare on the wire).
            self.c_errors.inc()
            root_span.set(outcome="unsupported")
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=0, merged=False,
                error="deployment transactions are not specialized"))
            return None
        with self.tracer.span("materialize_prefix",
                              preds=len(context.predecessors)) as sp:
            self.injector.maybe_raise("speculator.materialize_prefix",
                                      tx=tx.hash, contract=tx.to)
            state, prefix = self._materialize_context(context)
            sp.add_cost(prefix.paid)
            sp.set(executed=prefix.executed, cached=prefix.cached)

        with self.tracer.span("pre_execute") as sp:
            self.injector.maybe_raise("speculator.pre_execute",
                                      tx=tx.hash, contract=tx.to)
            trace = trace_transaction(state, context.header, tx,
                                      blockhash_fn=self.blockhash_fn)
            trace.context_id = context.context_id
            sp.add_cost(len(trace.steps) * costmodel.EVM_STEP
                        + state.disk.stats.cost_units)
        if trace.result.error:
            # Envelope-level failure (bad nonce / unaffordable gas) in
            # this speculated context: no bytecode ran, so there is
            # nothing to specialize — and the accelerator's native
            # envelope cannot be guarded by an AP.  Skip this future.
            # Only the predecessor work actually performed is charged;
            # the logical (scheduling) cost stays zero as before.
            self.c_actual_cost.inc(prefix.paid)
            self.c_errors.inc()
            root_span.set(outcome="envelope")
            root_span.add_cost(prefix.paid)
            self.records.append(SpeculationRecord(
                tx_hash=tx.hash, context_id=context.context_id,
                trace_length=0, synthesis_cost=prefix.paid,
                merged=False, error=f"envelope: {trace.result.error}",
                preds_executed=prefix.executed,
                preds_cached=prefix.cached))
            return None
        self.h_trace_len.observe(len(trace.steps))
        target_cost = (len(trace.steps) * costmodel.EVM_STEP
                       + state.disk.stats.cost_units)
        logical_cost = int(
            (target_cost + prefix.io_full)
            * costmodel.SPECULATION_COST_FACTOR
        ) + prefix.instructions_full * costmodel.EVM_STEP
        self.c_logical_cost.inc(logical_cost)

        fingerprint: Optional[str] = None
        fingerprint_cost = 0
        cached_path: Optional[APPath] = None
        if self.enable_synth_dedup:
            with self.tracer.span("fingerprint") as sp:
                fingerprint = trace_fingerprint(trace)
                fingerprint_cost = \
                    len(trace.steps) * costmodel.FINGERPRINT_STEP
                sp.add_cost(fingerprint_cost)
            cached_path = self._dedup_lookup(tx.hash, fingerprint)
            if cached_path is None:
                self.c_dedup_misses.inc()

        path_id = self._next_path_id
        self._next_path_id += 1
        if cached_path is not None:
            # Identical trace already synthesized and merged for this
            # transaction: clone the path (fresh ids, shared immutable
            # instruction/stats payload) instead of re-running
            # translate/optimize.  Paying target_cost models the
            # pre-execution that produced the trace; the ~11x synthesis
            # surcharge is what dedup eliminates.
            self.c_dedup_hits.inc()
            full_synthesis = int(
                target_cost * costmodel.SPECULATION_COST_FACTOR)
            actual_cost = prefix.paid + target_cost + fingerprint_cost
            self.c_dedup_cost_saved.inc(
                full_synthesis - target_cost - fingerprint_cost)
            # Detach again: two clones of the same archived path must
            # not share mutable containers with each other either.
            path = replace(_detach_path(cached_path), path_id=path_id,
                           context_id=context.context_id)
        else:
            actual_cost = prefix.paid + int(
                target_cost * costmodel.SPECULATION_COST_FACTOR
            ) + fingerprint_cost
            try:
                # The synthesize span carries only the translate/optimize
                # surcharge; pre-execution and fingerprinting are charged
                # on their own spans, so sibling stages partition the
                # actual cost without double counting.
                with self.tracer.span("synthesize") as sp:
                    # InjectedFault is not a SpeculationError: it flies
                    # past the except below, up to the guard boundary.
                    self.injector.maybe_raise("speculator.synthesize",
                                              tx=tx.hash, contract=tx.to)
                    path = synthesize_path(trace, path_id=path_id,
                                           context_id=context.context_id,
                                           pass_config=self.pass_config)
                    sp.add_cost(actual_cost - prefix.paid - target_cost
                                - fingerprint_cost)
            except SpeculationError as exc:
                self.c_actual_cost.inc(actual_cost)
                self.c_errors.inc()
                root_span.set(outcome="synthesis-error")
                root_span.add_cost(actual_cost)
                self.records.append(SpeculationRecord(
                    tx_hash=tx.hash, context_id=context.context_id,
                    trace_length=len(trace.steps),
                    synthesis_cost=actual_cost,
                    logical_cost=logical_cost,
                    merged=False, error=str(exc),
                    preds_executed=prefix.executed,
                    preds_cached=prefix.cached))
                return None
        self.c_actual_cost.inc(actual_cost)

        ap = self.aps.get(tx.hash)
        if ap is None:
            ap = AcceleratedProgram(tx.hash)
            self._memo_insert(tx.hash, ap)
        else:
            self.aps.move_to_end(tx.hash)
        with self.tracer.span("merge") as sp:
            self.injector.maybe_raise("speculator.merge",
                                      tx=tx.hash, contract=tx.to)
            if self.jit is not None:
                # Merging/pruning/shortcut-building mutates the tree: a
                # previously compiled closure is stale the moment the
                # merge starts, so drop it first (recompiled below).
                self.jit.release(ap)
            merged = merge_path(ap, path, self._merge_metrics)
            if merged:
                prune_tree(ap, self._merge_metrics)
                if self.enable_memoization:
                    self._build_shortcuts_contained(ap)
            sp.set(merged=merged)
        if merged:
            self.c_merged.inc()
            self._maybe_corrupt(ap, tx)
            # Index only merged paths: a path whose merge failed is not
            # part of any AP, so cloning it later would resurrect a
            # rejected structure.
            if fingerprint is not None and cached_path is None:
                self._dedup_store(tx.hash, fingerprint, path)
            # Compile last: corruption sites and shortcut building have
            # all run, so the closure bakes a consistent tree snapshot.
            self._jit_compile_contained(ap, tx,
                                        deduped=cached_path is not None)
        root_span.set(outcome="merged" if merged else "merge-failed",
                      deduped=cached_path is not None)
        root_span.add_cost(actual_cost)
        self.records.append(SpeculationRecord(
            tx_hash=tx.hash, context_id=context.context_id,
            trace_length=len(trace.steps), synthesis_cost=actual_cost,
            logical_cost=logical_cost, merged=merged,
            deduped=cached_path is not None,
            preds_executed=prefix.executed,
            preds_cached=prefix.cached,
            read_set_size=len(path.read_set),
            write_set_size=len(path.write_set)))
        return path

    def speculate_many(self, tx: Transaction,
                       contexts: Iterable[FutureContext]) -> int:
        """Speculate on several futures; returns merged-path count.

        Only paths :func:`merge_path` actually accepted are counted —
        a synthesized path whose merge failed does not contribute.
        """
        merged = 0
        for context in contexts:
            path = self.speculate(tx, context)
            if path is not None and self.records[-1].merged:
                merged += 1
        return merged
