"""S-EVM: the register-based intermediate representation (paper §4.3).

S-EVM is "a highly simplified register-based version of EVM".  Each
instruction fulfils exactly one of three functionalities — read, write,
or compute — plus the guard instructions that implement constraint
checking.  Instructions are in SSA form: every destination register is
assigned exactly once per path.

Operands are either :class:`Reg` references or plain ``int`` constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.evm.opcodes import Op


class Reg(int):
    """A register reference (SSA id).  Subclass of int for cheap storage,
    but distinct from literal constants via isinstance checks."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"v{int(self)}"


def is_reg(operand) -> bool:
    """True if the operand is a register reference (not a constant)."""
    return isinstance(operand, Reg)


class SKind(enum.Enum):
    """Functional classification of an S-EVM instruction."""

    READ = "read"        # reads the execution context into a register
    COMPUTE = "compute"  # pure function of operands
    WRITE = "write"      # state write / log emission
    GUARD = "guard"      # constraint check (control or data)


class GuardMode(enum.Enum):
    """How a guard compares its observed value against path expectations."""

    #: Exact value equality (jump targets, call targets, data offsets).
    EQ = "eq"
    #: Truthiness equality (JUMPI conditions: taken vs not-taken).
    TRUTH = "truth"
    #: Disequality of two registers (data constraint: two variable
    #: storage slots must stay distinct for register promotion to hold).
    NEQ = "neq"


@dataclass
class SInstr:
    """One S-EVM instruction.

    ``op`` reuses EVM mnemonics where a counterpart exists (the paper
    keeps the same names).  ``args`` mixes Reg and int-constant operands.
    ``key`` carries the context key for reads/writes whose location is
    static (e.g. header field); storage ops carry their address in
    ``key`` and the (possibly register) slot in ``args``.
    """

    kind: SKind
    op: str
    dest: Optional[Reg] = None
    args: Tuple = ()
    key: Optional[tuple] = None
    #: Guard metadata (kind GUARD only).
    guard_mode: Optional[GuardMode] = None
    #: Expected observation for this path: EQ -> constant value;
    #: TRUTH -> bool taken; NEQ -> True (operands observed distinct).
    expected: object = None
    #: Whether this guard asserts control flow (True) or a data
    #: dependency (False).  For Fig. 15 accounting.
    is_control: bool = True
    #: Extra payload for writes: LOG topics/layout, return metadata.
    meta: dict = field(default_factory=dict)

    def operands(self) -> Tuple:
        return self.args

    def reads_context(self) -> bool:
        return self.kind is SKind.READ

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = f"{self.dest} = " if self.dest is not None else ""
        args = ", ".join(repr(a) for a in self.args)
        tail = f" key={self.key}" if self.key else ""
        if self.kind is SKind.GUARD:
            return (f"GUARD[{self.guard_mode.value}]({args}) "
                    f"expect={self.expected}")
        return f"{head}{self.op}({args}){tail}"


# Read-op names (the op field of READ instructions).
READ_SLOAD = "SLOAD"
READ_BALANCE = "BALANCE"
READ_BLOCKHASH = "BLOCKHASH"
READ_EXTCODESIZE = "EXTCODESIZE"
READ_HEADER_OPS = {
    "TIMESTAMP": "timestamp",
    "NUMBER": "number",
    "COINBASE": "coinbase",
    "DIFFICULTY": "difficulty",
    "GASLIMIT": "gas_limit",
}

# Write-op names.
WRITE_SSTORE = "SSTORE"
WRITE_LOG = "LOG"

# Compute-op name for the register-form hash produced by complex
# instruction decomposition of SHA3 (reads its words from registers, not
# memory — the memory read half is eliminated by register promotion).
COMPUTE_SHA3 = "SHA3"

#: Map from EVM opcode int to S-EVM compute mnemonic for the pure ops.
PURE_OP_NAMES = {
    int(Op.ADD): "ADD", int(Op.MUL): "MUL", int(Op.SUB): "SUB",
    int(Op.DIV): "DIV", int(Op.SDIV): "SDIV", int(Op.MOD): "MOD",
    int(Op.SMOD): "SMOD", int(Op.ADDMOD): "ADDMOD",
    int(Op.MULMOD): "MULMOD", int(Op.EXP): "EXP",
    int(Op.SIGNEXTEND): "SIGNEXTEND",
    int(Op.LT): "LT", int(Op.GT): "GT", int(Op.SLT): "SLT",
    int(Op.SGT): "SGT", int(Op.EQ): "EQ", int(Op.ISZERO): "ISZERO",
    int(Op.AND): "AND", int(Op.OR): "OR", int(Op.XOR): "XOR",
    int(Op.NOT): "NOT", int(Op.BYTE): "BYTE",
    int(Op.SHL): "SHL", int(Op.SHR): "SHR", int(Op.SAR): "SAR",
}
