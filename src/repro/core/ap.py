"""Accelerated Programs (paper §4.3).

An AP is the merged result of specializing one transaction against one
or more speculated future contexts:

* a **tree of nodes** (reads, computes, buffered writes) whose guard
  nodes serve the dual purpose of constraint checking and case-branching
  between the constraint sets of different speculated contexts — making
  merged-AP execution time independent of how many futures were merged;
* **terminals**, one per distinct execution path, holding the constant
  outcome of that path (success flag, gas used, return-data layout);
* **shortcuts** (added by :mod:`repro.core.memoize`), which skip whole
  instruction segments when their input registers carry values already
  seen during some pre-execution.

Execution (:mod:`repro.core.ap_exec`) buffers all writes until a
terminal is reached, so a constraint violation leaves nothing to roll
back (the paper's rollback-free property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.sevm import GuardMode, Reg, SInstr, SKind, is_reg
from repro.core.translate import SynthStats, TranslationResult


@dataclass
class Shortcut:
    """Memoization shortcut over one instruction segment.

    ``entries`` maps a tuple of input-register values (as remembered
    from some pre-execution) to the segment's remembered outputs and the
    node to resume at.  ``length`` counts skipped instructions for the
    §5.5 skip-rate statistic.
    """

    input_regs: Tuple[Reg, ...]
    entries: Dict[tuple, Tuple[Dict[Reg, int], "APNode"]] = \
        field(default_factory=dict)
    length: int = 0


class APNode:
    """One node of the AP tree."""

    __slots__ = ("instr", "next", "branches", "shortcut")

    def __init__(self, instr: SInstr) -> None:
        self.instr = instr
        self.next: Optional[object] = None      # APNode | Terminal
        #: For guard nodes: observed branch key -> child (APNode|Terminal).
        self.branches: Optional[Dict[object, object]] = (
            {} if instr.kind is SKind.GUARD else None)
        self.shortcut: Optional[Shortcut] = None

    def is_guard(self) -> bool:
        return self.instr.kind is SKind.GUARD

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<APNode {self.instr!r}>"


@dataclass
class Terminal:
    """End of one execution path: the path's constant outcome."""

    path_ids: List[int]
    success: bool
    gas_used: int
    return_pieces: List[Tuple[int, tuple]]
    return_size: int
    #: Full speculated read set of the first path reaching this
    #: terminal (used for perfect-prediction classification).
    read_set: Dict[tuple, int]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "ok" if self.success else "revert"
        return f"<Terminal paths={self.path_ids} {status}>"


def branch_key_for(instr: SInstr) -> object:
    """The branch key this path's guard expectation selects."""
    if instr.guard_mode is GuardMode.EQ:
        return instr.expected
    if instr.guard_mode is GuardMode.TRUTH:
        return bool(instr.expected)
    return True  # NEQ: the only satisfying outcome is "distinct"


def observed_branch_key(instr: SInstr, values: Tuple[int, ...]) -> object:
    """Branch key selected by runtime-observed guard operand values."""
    if instr.guard_mode is GuardMode.EQ:
        return values[0]
    if instr.guard_mode is GuardMode.TRUTH:
        return bool(values[0])
    return True if values[0] != values[1] else None


@dataclass
class APPath:
    """One synthesized path (one pre-execution), ready for merging."""

    path_id: int
    context_id: int
    instrs: List[SInstr]                # post-DCE (stats / inspection)
    pre_dce_instrs: List[SInstr]        # merge skeleton
    concrete: Dict[Reg, int]
    return_pieces: List[Tuple[int, tuple]]
    return_size: int
    success: bool
    gas_used: int
    stats: SynthStats
    read_set: Dict[tuple, int]
    write_set: Dict[tuple, object]

    @classmethod
    def from_translation(cls, result: TranslationResult, path_id: int,
                         context_id: int) -> "APPath":
        if result.pre_dce_instrs is None:
            raise ValueError("run optimize_path before building an APPath")
        return cls(
            path_id=path_id,
            context_id=context_id,
            instrs=result.instrs,
            pre_dce_instrs=result.pre_dce_instrs,
            concrete=result.concrete,
            return_pieces=result.return_pieces,
            return_size=result.return_size,
            success=result.success,
            gas_used=result.gas_used,
            stats=result.stats,
            read_set=result.read_set,
            write_set=result.write_set,
        )


class AcceleratedProgram:
    """Merged AP for one transaction."""

    def __init__(self, tx_hash: int) -> None:
        self.tx_hash = tx_hash
        self.root: Optional[object] = None   # APNode | Terminal
        self.paths: List[APPath] = []
        self.merge_failures = 0
        #: Union of all speculated read sets (prefetcher input).
        self.prefetch_keys: Set[tuple] = set()
        #: Simulation time when the AP became usable (set by speculator).
        self.ready_at: float = 0.0
        #: Distinct speculated context ids folded into this AP.
        self.context_ids: Set[int] = set()
        self.shortcut_count = 0
        #: Specialized closure for this tree
        #: (:class:`repro.evm.jit.specialize.CompiledAP`), or ``None``
        #: when interpreted.  Cleared before any tree mutation and on
        #: tier invalidation; set by :class:`repro.evm.jit.tier.JitTier`.
        self.jit: Optional[object] = None

    # -- structure helpers -----------------------------------------------

    def path_count(self) -> int:
        """Number of distinct merged execution paths (§5.5)."""
        return len(self._terminals())

    def _terminals(self) -> List[Terminal]:
        terminals: List[Terminal] = []
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            while isinstance(node, APNode):
                if node.branches is not None:
                    stack.extend(node.branches.values())
                    node = None
                    break
                node = node.next
            if isinstance(node, Terminal) and id(node) not in seen:
                seen.add(id(node))
                terminals.append(node)
        return terminals

    def all_nodes(self) -> List[APNode]:
        """Every APNode in the tree (pre-order along chains)."""
        nodes: List[APNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            while isinstance(node, APNode):
                nodes.append(node)
                if node.branches is not None:
                    stack.extend(node.branches.values())
                    break
                node = node.next
        return nodes

    def linear_routes(self) -> List[List[object]]:
        """All root-to-terminal node lists (terminal included last)."""
        routes: List[List[object]] = []
        if self.root is None:
            return routes
        stack: List[Tuple[object, List[object]]] = [(self.root, [])]
        while stack:
            node, prefix = stack.pop()
            while isinstance(node, APNode):
                prefix.append(node)
                if node.branches is not None:
                    for child in node.branches.values():
                        stack.append((child, list(prefix)))
                    node = None
                    break
                node = node.next
            if isinstance(node, Terminal):
                prefix.append(node)
                routes.append(prefix)
        return routes


def describe_ap(ap: "AcceleratedProgram") -> str:
    """Render the AP tree as indented text (a textual Figure 10).

    Guard nodes show their branch keys; shortcut-bearing nodes are
    marked with the entry count; terminals show the path outcome.
    """
    lines: List[str] = []

    def emit(node, depth: int) -> None:
        pad = "  " * depth
        while isinstance(node, APNode):
            marker = ""
            if node.shortcut is not None:
                marker = (f"   [shortcut: {len(node.shortcut.entries)} "
                          f"entr{'y' if len(node.shortcut.entries) == 1 else 'ies'}, "
                          f"skips {node.shortcut.length}]")
            lines.append(f"{pad}{node.instr!r}{marker}")
            if node.branches is not None:
                for key, child in node.branches.items():
                    lines.append(f"{pad}-> branch {key!r}:")
                    emit(child, depth + 1)
                return
            node = node.next
        if isinstance(node, Terminal):
            status = "ok" if node.success else "revert"
            lines.append(
                f"{pad}TERMINAL paths={node.path_ids} {status} "
                f"gas={node.gas_used}")

    if ap.root is None:
        return "<empty AP>"
    emit(ap.root, 0)
    return "\n".join(lines)


def build_chain(instrs: List[SInstr], terminal: Terminal,
                path_expected: bool = True) -> object:
    """Build a linear APNode chain ending in ``terminal``.

    Guard nodes get a single branch keyed by this path's expectation.
    Returns the head (a Terminal directly if ``instrs`` is empty).
    """
    del path_expected
    head: object = terminal
    for instr in reversed(instrs):
        node = APNode(instr)
        if node.branches is not None:
            node.branches[branch_key_for(instr)] = head
        else:
            node.next = head
        head = node
    return head


def make_terminal(path: APPath) -> Terminal:
    return Terminal(
        path_ids=[path.path_id],
        success=path.success,
        gas_used=path.gas_used,
        return_pieces=path.return_pieces,
        return_size=path.return_size,
        read_set=path.read_set,
    )
