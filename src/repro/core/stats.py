"""Evaluation aggregations: every table and figure of paper §5.

All functions consume the per-transaction :class:`JoinedRecord` list an
emulator replay produces.  Aggregate speedups are time-weighted (total
baseline cost / total accelerated cost) — the quantity that determines
how many more transactions fit into an execution window, which is the
paper's motivation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import costmodel
from repro.state.diskio import WARM_COST


def aggregate_speedup(records: Sequence) -> float:
    """Total-baseline / total-accelerated over ``records``."""
    baseline = sum(r.baseline_cost for r in records)
    accelerated = sum(r.forerunner_cost for r in records)
    if accelerated <= 0:
        return 0.0
    return baseline / accelerated


def _speedup_ratio(baseline_total: float, accel_total: float) -> float:
    return baseline_total / accel_total if accel_total > 0 else 0.0


# ---------------------------------------------------------------------------
# Table 2: effective speedup + comparators
# ---------------------------------------------------------------------------

def _comparator_costs(record, hit: bool) -> int:
    """Cost of a traditional perfect-match executor on one heard tx.

    On a hit it commits pre-computed results (≈ the cost Forerunner
    pays when every shortcut hits — we reuse the measured AP cost).  On
    a miss it re-executes from scratch, but with the prefetcher having
    warmed the state (all reads warm).
    """
    if hit:
        return record.forerunner_cost
    warm_io = record.baseline_io_reads * WARM_COST
    return (costmodel.FALLBACK_FIXED + record.baseline_cpu + warm_io)


@dataclass
class Table2Row:
    name: str
    speedup: float
    satisfied_fraction: float
    satisfied_weighted: float


def table2(records: Sequence) -> List[Table2Row]:
    """Table 2: Forerunner vs perfect-matching comparators.

    Computed over heard transactions (the paper's effective speedup).
    """
    heard = [r for r in records if r.heard]
    if not heard:
        return []
    baseline_total = sum(r.baseline_cost for r in heard)

    rows = [Table2Row("Baseline", 1.0, 0.0, 0.0)]

    satisfied = [r for r in heard if r.outcome == "satisfied"]
    fore_total = sum(r.forerunner_cost for r in heard)
    rows.append(Table2Row(
        "Forerunner",
        _speedup_ratio(baseline_total, fore_total),
        len(satisfied) / len(heard),
        sum(r.baseline_cost for r in satisfied) / baseline_total,
    ))

    # Traditional speculative execution: single future, perfect match.
    single_hits = [r for r in heard if r.first_context_perfect]
    single_total = sum(
        _comparator_costs(r, r.first_context_perfect) for r in heard)
    rows.append(Table2Row(
        "Perfect matching",
        _speedup_ratio(baseline_total, single_total),
        len(single_hits) / len(heard),
        sum(r.baseline_cost for r in single_hits) / baseline_total,
    ))

    # Perfect matching over all speculated futures.
    multi_hits = [r for r in heard if r.perfect]
    multi_total = sum(_comparator_costs(r, r.perfect) for r in heard)
    rows.append(Table2Row(
        "Perfect matching + multi-future prediction",
        _speedup_ratio(baseline_total, multi_total),
        len(multi_hits) / len(heard),
        sum(r.baseline_cost for r in multi_hits) / baseline_total,
    ))
    return rows


# ---------------------------------------------------------------------------
# Table 3: breakdown by prediction outcome
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    name: str
    tx_fraction: float
    weighted_fraction: float
    speedup: float


def table3(records: Sequence) -> List[Table3Row]:
    """Table 3: perfect / imperfect / missed breakdown (heard txs)."""
    heard = [r for r in records if r.heard]
    if not heard:
        return []
    baseline_total = sum(r.baseline_cost for r in heard)
    perfect = [r for r in heard
               if r.outcome == "satisfied" and r.perfect]
    imperfect = [r for r in heard
                 if r.outcome == "satisfied" and not r.perfect]
    missed = [r for r in heard if r.outcome != "satisfied"]
    rows = []
    for name, subset in (("satisfied/perfect", perfect),
                         ("satisfied/imperfect", imperfect),
                         ("unsatisfied/missed", missed)):
        rows.append(Table3Row(
            name=name,
            tx_fraction=len(subset) / len(heard),
            weighted_fraction=(
                sum(r.baseline_cost for r in subset) / baseline_total),
            speedup=aggregate_speedup(subset) if subset else 0.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# End-to-end (Table 2 text + Figure 14)
# ---------------------------------------------------------------------------

@dataclass
class SpeedupSummary:
    effective_speedup: float
    end_to_end_speedup: float
    satisfied_fraction: float
    satisfied_weighted: float
    heard_fraction: float
    heard_weighted: float
    unheard_speedup: float


def summarize(records: Sequence) -> SpeedupSummary:
    heard = [r for r in records if r.heard]
    unheard = [r for r in records if not r.heard]
    satisfied = [r for r in heard if r.outcome == "satisfied"]
    baseline_heard = sum(r.baseline_cost for r in heard) or 1
    baseline_all = sum(r.baseline_cost for r in records) or 1
    return SpeedupSummary(
        effective_speedup=aggregate_speedup(heard),
        end_to_end_speedup=aggregate_speedup(records),
        satisfied_fraction=len(satisfied) / len(heard) if heard else 0.0,
        satisfied_weighted=(
            sum(r.baseline_cost for r in satisfied) / baseline_heard),
        heard_fraction=len(heard) / len(records) if records else 0.0,
        heard_weighted=(
            sum(r.baseline_cost for r in heard) / baseline_all),
        unheard_speedup=aggregate_speedup(unheard) if unheard else 0.0,
    )


# ---------------------------------------------------------------------------
# Figure 11: reverse CDF of heard delay
# ---------------------------------------------------------------------------

def heard_delay_reverse_cdf(records: Sequence,
                            thresholds: Iterable[float] = range(0, 49, 4)
                            ) -> List[Tuple[float, float]]:
    """(x seconds, fraction of heard txs with delay > x) pairs."""
    delays = [r.heard_delay for r in records if r.heard]
    if not delays:
        return [(float(x), 0.0) for x in thresholds]
    n = len(delays)
    return [
        (float(x), sum(1 for d in delays if d > x) / n)
        for x in thresholds
    ]


# ---------------------------------------------------------------------------
# Figure 12: speedup distribution
# ---------------------------------------------------------------------------

def speedup_histogram(records: Sequence,
                      bucket_width: float = 5.0,
                      max_bucket: float = 50.0
                      ) -> List[Tuple[str, float]]:
    """Histogram of per-transaction speedups across heard txs."""
    heard = [r for r in records if r.heard]
    if not heard:
        return []
    buckets: Dict[str, int] = {"<1x": 0}
    edges = []
    low = 1.0
    while low < max_bucket:
        high = low + bucket_width if low > 1.0 else bucket_width
        edges.append((low, high))
        low = high
    labels = [f"{int(lo)}-{int(hi)}x" for lo, hi in edges]
    for label in labels:
        buckets[label] = 0
    buckets[f">={int(max_bucket)}x"] = 0
    for record in heard:
        s = record.speedup
        if s < 1.0:
            buckets["<1x"] += 1
            continue
        if s >= max_bucket:
            buckets[f">={int(max_bucket)}x"] += 1
            continue
        for (lo, hi), label in zip(edges, labels):
            if lo <= s < hi:
                buckets[label] += 1
                break
    n = len(heard)
    return [(label, count / n) for label, count in buckets.items()]


# ---------------------------------------------------------------------------
# Figure 13: gas used vs average speedup
# ---------------------------------------------------------------------------

def gas_vs_speedup(records: Sequence, bucket_factor: float = 2.0
                   ) -> List[Tuple[float, float, int]]:
    """(mean gas, aggregate speedup, count) per log-scaled gas bucket,
    over effectively-predicted (satisfied) heard transactions."""
    chosen = [r for r in records if r.heard and r.outcome == "satisfied"]
    if not chosen:
        return []
    buckets: Dict[int, List] = {}
    for record in chosen:
        gas = max(record.gas_used, 1)
        bucket = int(math.log(gas, bucket_factor))
        buckets.setdefault(bucket, []).append(record)
    result = []
    for bucket in sorted(buckets):
        subset = buckets[bucket]
        mean_gas = sum(r.gas_used for r in subset) / len(subset)
        result.append((mean_gas, aggregate_speedup(subset), len(subset)))
    return result


# ---------------------------------------------------------------------------
# Figure 15 / §5.5: AP synthesis statistics
# ---------------------------------------------------------------------------

@dataclass
class SynthesisReport:
    """Averages over all synthesized AP paths (Figure 15, §5.5)."""

    paths: int = 0
    trace_len_avg: float = 0.0
    decomposed_pct: float = 0.0
    eliminated_stack_pct: float = 0.0
    eliminated_control_pct: float = 0.0
    eliminated_mem_pct: float = 0.0
    eliminated_state_pct: float = 0.0
    inserted_guards_pct: float = 0.0
    inserted_data_pct: float = 0.0
    eliminated_constant_pct: float = 0.0
    eliminated_duplicate_pct: float = 0.0
    eliminated_dead_pct: float = 0.0
    eliminated_promoted_pct: float = 0.0
    sevm_unoptimized_pct: float = 0.0
    final_pct: float = 0.0
    constraint_pct: float = 0.0
    fastpath_pct: float = 0.0
    ap_instrs_avg: float = 0.0
    shortcuts_avg: float = 0.0
    #: Histogram of paths-per-AP / contexts-per-AP (§5.5 text).
    paths_per_ap: Dict[int, int] = field(default_factory=dict)
    contexts_per_ap: Dict[int, int] = field(default_factory=dict)
    skip_rate: float = 0.0


def synthesis_report(aps: Iterable, exec_records: Sequence = ()
                     ) -> SynthesisReport:
    """Aggregate Figure-15 style statistics over accelerated programs."""
    report = SynthesisReport()
    total_trace = 0
    sums = dict(decomposed=0, stack=0, control=0, mem=0, state=0,
                guards=0, data=0, constant=0, duplicate=0, dead=0,
                promoted=0, unopt=0, final=0, constraint=0, fastpath=0)
    shortcut_total = 0
    path_count = 0
    ap_count = 0
    paths_per_ap: Dict[int, int] = {}
    contexts_per_ap: Dict[int, int] = {}
    for ap in aps:
        ap_count += 1
        distinct_paths = ap.path_count()
        paths_per_ap[distinct_paths] = \
            paths_per_ap.get(distinct_paths, 0) + 1
        ctxs = len(ap.context_ids)
        contexts_per_ap[ctxs] = contexts_per_ap.get(ctxs, 0) + 1
        shortcut_total += ap.shortcut_count
        for path in ap.paths:
            stats = path.stats
            path_count += 1
            total_trace += stats.trace_len
            sums["decomposed"] += stats.decomposed_added
            sums["stack"] += stats.eliminated_stack
            sums["control"] += stats.eliminated_control
            sums["mem"] += stats.eliminated_mem
            sums["state"] += stats.eliminated_state
            sums["guards"] += stats.inserted_guards
            sums["data"] += stats.inserted_data_constraints
            sums["constant"] += stats.eliminated_constant
            sums["duplicate"] += stats.eliminated_duplicate
            sums["dead"] += stats.eliminated_dead
            sums["promoted"] += stats.eliminated_promoted_reads
            sums["unopt"] += stats.sevm_unoptimized_len()
            sums["final"] += stats.final_len
            sums["constraint"] += stats.constraint_section_len
            sums["fastpath"] += stats.fast_path_len
    if not path_count or not total_trace:
        return report
    pct = 100.0 / total_trace
    report.paths = path_count
    report.trace_len_avg = total_trace / path_count
    report.decomposed_pct = sums["decomposed"] * pct
    report.eliminated_stack_pct = sums["stack"] * pct
    report.eliminated_control_pct = sums["control"] * pct
    report.eliminated_mem_pct = sums["mem"] * pct
    report.eliminated_state_pct = sums["state"] * pct
    report.inserted_guards_pct = sums["guards"] * pct
    report.inserted_data_pct = sums["data"] * pct
    report.eliminated_constant_pct = sums["constant"] * pct
    report.eliminated_duplicate_pct = sums["duplicate"] * pct
    report.eliminated_dead_pct = sums["dead"] * pct
    report.eliminated_promoted_pct = sums["promoted"] * pct
    report.sevm_unoptimized_pct = sums["unopt"] * pct
    report.final_pct = sums["final"] * pct
    report.constraint_pct = sums["constraint"] * pct
    report.fastpath_pct = sums["fastpath"] * pct
    report.ap_instrs_avg = sums["final"] / path_count
    report.shortcuts_avg = shortcut_total / max(1, ap_count)
    report.paths_per_ap = paths_per_ap
    report.contexts_per_ap = contexts_per_ap
    executed = sum(r.executed_nodes for r in exec_records)
    skipped = sum(r.skipped_nodes for r in exec_records)
    if executed + skipped:
        report.skip_rate = skipped / (executed + skipped)
    return report


# ---------------------------------------------------------------------------
# §5.6: off-critical-path overhead
# ---------------------------------------------------------------------------

@dataclass
class OverheadReport:
    """Speculation cost relative to plain execution (§5.6)."""

    speculation_cost: int
    prefetch_cost: int
    execution_cost_baseline: int
    ratio: float


def offpath_overhead(run) -> OverheadReport:
    """Off-path work vs the baseline's on-path execution work."""
    baseline_total = sum(r.baseline_cost for r in run.records) or 1
    total = run.total_speculation_cost + run.prefetch_offpath_cost
    return OverheadReport(
        speculation_cost=run.total_speculation_cost,
        prefetch_cost=run.prefetch_offpath_cost,
        execution_cost_baseline=baseline_total,
        ratio=total / baseline_total,
    )


# ---------------------------------------------------------------------------
# Speculation caching layers: prefix cache + synthesis dedup
# ---------------------------------------------------------------------------

@dataclass
class SpeculationCacheReport:
    """Work saved by the prefix cache and trace-fingerprint dedup."""

    # -- prefix cache --------------------------------------------------------
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_evictions: int = 0
    prefix_invalidations: int = 0
    pred_execs: int = 0
    pred_execs_avoided: int = 0
    pred_instructions: int = 0
    pred_instructions_avoided: int = 0
    #: Redundant (repeat) materializations actually performed — the
    #: seed re-executed every repeat demand; with the cache on only
    #: LRU evictions can force one.
    pred_execs_redundant: int = 0
    pred_instructions_redundant: int = 0
    # -- synthesis dedup -----------------------------------------------------
    dedup_hits: int = 0
    dedup_misses: int = 0
    dedup_cost_saved: int = 0
    # -- cost split ----------------------------------------------------------
    #: Off-path cost actually paid (net of both layers).
    actual_cost: int = 0
    #: What an uncached speculator would have paid (seed accounting).
    logical_cost: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        lookups = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / lookups if lookups else 0.0

    @property
    def dedup_hit_rate(self) -> float:
        lookups = self.dedup_hits + self.dedup_misses
        return self.dedup_hits / lookups if lookups else 0.0

    @property
    def pred_reduction_factor(self) -> float:
        """Redundant-predecessor-work reduction, in instruction units:
        (demanded instructions) / (actually executed instructions)."""
        demanded = self.pred_instructions + self.pred_instructions_avoided
        if not self.pred_instructions:
            return float(demanded) if demanded else 1.0
        return demanded / self.pred_instructions

    @property
    def cost_saved(self) -> int:
        return max(0, self.logical_cost - self.actual_cost)


def speculation_cache_report(source) -> SpeculationCacheReport:
    """Aggregate cache/dedup counters from a Speculator, a
    ForerunnerNode, or an EvaluationRun."""
    speculator = source
    for attribute in ("forerunner_node", "speculator"):
        inner = getattr(speculator, attribute, None)
        if inner is not None:
            speculator = inner
    prefix = speculator.prefix_cache
    return SpeculationCacheReport(
        prefix_hits=prefix.hits,
        prefix_misses=prefix.misses,
        prefix_evictions=prefix.evictions,
        prefix_invalidations=prefix.invalidations,
        pred_execs=prefix.pred_execs,
        pred_execs_avoided=prefix.pred_execs_avoided,
        pred_instructions=prefix.pred_instructions,
        pred_instructions_avoided=prefix.pred_instructions_avoided,
        pred_execs_redundant=prefix.redundant_execs,
        pred_instructions_redundant=prefix.redundant_instructions,
        dedup_hits=speculator.dedup_hits,
        dedup_misses=speculator.dedup_misses,
        dedup_cost_saved=speculator.dedup_cost_saved,
        actual_cost=speculator.total_speculation_cost,
        logical_cost=speculator.total_logical_cost,
    )


# ---------------------------------------------------------------------------
# Execution witnesses (repro.witness)
# ---------------------------------------------------------------------------

@dataclass
class WitnessReport:
    """Aggregate view of one run's witness stream."""

    witnesses: int = 0
    by_tier: Dict[str, int] = field(default_factory=dict)
    by_outcome: Dict[str, int] = field(default_factory=dict)
    constraints: int = 0
    delta_rows: int = 0
    created_accounts: int = 0
    guards_checked: int = 0
    #: Total cost units the witnessed executions charged.
    execution_cost_units: int = 0

    @property
    def constraints_per_witness(self) -> float:
        return self.constraints / self.witnesses if self.witnesses else 0.0

    def as_dict(self) -> dict:
        return {
            "witnesses": self.witnesses,
            "by_tier": dict(sorted(self.by_tier.items())),
            "by_outcome": dict(sorted(self.by_outcome.items())),
            "constraints": self.constraints,
            "delta_rows": self.delta_rows,
            "created_accounts": self.created_accounts,
            "guards_checked": self.guards_checked,
            "execution_cost_units": self.execution_cost_units,
        }


def witness_report(witnesses: Sequence) -> WitnessReport:
    """Summarize a witness stream (a node's ``witnesses`` list)."""
    report = WitnessReport()
    for witness in witnesses:
        report.witnesses += 1
        report.by_tier[witness.tier] = \
            report.by_tier.get(witness.tier, 0) + 1
        report.by_outcome[witness.outcome] = \
            report.by_outcome.get(witness.outcome, 0) + 1
        report.constraints += len(witness.constraints)
        report.delta_rows += len(witness.delta)
        report.created_accounts += len(witness.created)
        report.guards_checked += witness.guards_checked
        report.execution_cost_units += witness.cost_units
    return report
