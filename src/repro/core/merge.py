"""AP merging (paper §4.3, "AP merging") and cross-branch pruning.

Two APs synthesized from different pre-executions of the same
transaction share a non-empty common instruction prefix and diverge only
at guard instructions (control-flow split points).  Merging folds a new
path into the existing tree by walking both in lockstep: at each guard
the path's expected outcome picks (or creates) a branch.

After merging, :func:`prune_tree` runs dead-code elimination across the
whole tree (an instruction in the shared prefix is live if *any* branch
uses it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.ap import (
    AcceleratedProgram,
    APNode,
    APPath,
    Terminal,
    branch_key_for,
    build_chain,
    make_terminal,
)
from repro.core.sevm import Reg, SInstr, SKind, is_reg


class MergeMetrics:
    """Instrument bundle for merge/prune accounting.

    Owned by the caller (the speculator allocates one under its scope
    as ``merge.*``); :func:`merge_path` and :func:`prune_tree` accept
    it optionally so library users pay nothing when uninstrumented.
    """

    __slots__ = ("attempts", "accepted", "rejected", "enriched",
                 "new_branches", "pruned_nodes")

    def __init__(self, scope) -> None:
        self.attempts = scope.counter("attempts")
        self.accepted = scope.counter("accepted")
        self.rejected = scope.counter("rejected")
        #: Structurally identical path folded into an existing terminal.
        self.enriched = scope.counter("enriched")
        #: Merges that opened a new branch at a guard.
        self.new_branches = scope.counter("new_branches")
        self.pruned_nodes = scope.counter("pruned_nodes")


def _meta_key(instr: SInstr) -> tuple:
    """Hashable identity of the meta fields that affect semantics."""
    meta = instr.meta
    if instr.op == "MCONCAT":
        return tuple(
            (e[0], e[1], bytes(e[2])) if e[0] == "bytes" else tuple(e)
            for e in meta["layout"]) + (meta.get("size", 32),)
    if instr.op == "SHA3":
        return (meta["size"],)
    if instr.op == "LOG":
        return (meta["topic_count"], meta["data_size"])
    return ()


def structurally_equal(a: SInstr, b: SInstr) -> bool:
    """Same instruction shape (guard expectations excluded)."""
    return (a.kind is b.kind
            and a.op == b.op
            and a.dest == b.dest
            and a.args == b.args
            and a.key == b.key
            and a.guard_mode is b.guard_mode
            and _meta_key(a) == _meta_key(b))


def merge_path(ap: AcceleratedProgram, path: APPath,
               metrics: Optional[MergeMetrics] = None) -> bool:
    """Fold ``path`` into ``ap``'s tree; returns True on success.

    On a structural mismatch that is not at a guard (which cannot happen
    for deterministic synthesis, but is handled defensively) the path is
    dropped and ``ap.merge_failures`` is bumped.
    """
    if metrics is not None:
        metrics.attempts.inc()
    terminal = make_terminal(path)
    instrs = path.pre_dce_instrs
    if ap.root is None:
        ap.root = build_chain(instrs, terminal)
        ap.paths.append(path)
        ap.prefetch_keys.update(path.read_set.keys())
        ap.context_ids.add(path.context_id)
        if metrics is not None:
            metrics.accepted.inc()
        return True

    node = ap.root
    index = 0
    while True:
        if isinstance(node, Terminal):
            if index == len(instrs):
                # Structurally identical path (e.g. same control path in
                # a different context): enrich the terminal and record
                # the path for extra shortcut entries.
                node.path_ids.append(path.path_id)
                ap.paths.append(path)
                ap.prefetch_keys.update(path.read_set.keys())
                ap.context_ids.add(path.context_id)
                if metrics is not None:
                    metrics.accepted.inc()
                    metrics.enriched.inc()
                return True
            ap.merge_failures += 1
            if metrics is not None:
                metrics.rejected.inc()
            return False
        if index >= len(instrs):
            ap.merge_failures += 1
            if metrics is not None:
                metrics.rejected.inc()
            return False
        instr = instrs[index]
        if not structurally_equal(node.instr, instr):
            ap.merge_failures += 1
            if metrics is not None:
                metrics.rejected.inc()
            return False
        if node.branches is not None:
            key = branch_key_for(instr)
            child = node.branches.get(key)
            if child is None:
                node.branches[key] = build_chain(instrs[index + 1:], terminal)
                ap.paths.append(path)
                ap.prefetch_keys.update(path.read_set.keys())
                ap.context_ids.add(path.context_id)
                if metrics is not None:
                    metrics.accepted.inc()
                    metrics.new_branches.inc()
                return True
            node = child
        else:
            node = node.next
        index += 1


def prune_tree(ap: AcceleratedProgram,
               metrics: Optional[MergeMetrics] = None) -> int:
    """Tree-wide dead-code elimination; returns removed node count.

    A node is live if it is a guard, a write, or defines a register used
    by any live node in any branch (or by any terminal's return layout).
    """
    nodes = ap.all_nodes()
    used: Set[Reg] = set()
    for terminal in ap._terminals():  # noqa: SLF001 - same module family
        for _, piece in terminal.return_pieces:
            if piece[0] == "reg":
                used.add(piece[1])

    changed = True
    live_ids: Set[int] = set()
    while changed:
        changed = False
        for node in nodes:
            if id(node) in live_ids:
                continue
            instr = node.instr
            if instr.kind in (SKind.GUARD, SKind.WRITE) or (
                    instr.dest is not None and instr.dest in used):
                live_ids.add(id(node))
                for arg in instr.args:
                    if is_reg(arg) and arg not in used:
                        used.add(arg)
                        changed = True

    removed = 0

    def skip_dead(node):
        nonlocal removed
        while isinstance(node, APNode) and id(node) not in live_ids:
            removed += 1
            node = node.next
        return node

    def rebuild(head):
        """Relink one live chain in place (recursing only at guards,
        whose nesting depth is small)."""
        head = skip_dead(head)
        node = head
        while isinstance(node, APNode):
            if node.branches is not None:
                node.branches = {
                    key: rebuild(child)
                    for key, child in node.branches.items()
                }
                break
            node.next = skip_dead(node.next)
            node = node.next
        return head

    ap.root = rebuild(ap.root)
    if metrics is not None:
        metrics.pruned_nodes.inc(removed)
    return removed
