"""Deterministic execution cost model.

The paper measures wall-clock speedups on a Xeon testbed.  A pure-Python
EVM cannot reproduce microsecond-scale wall-clock behaviour faithfully
(interpreter overhead swamps it — see DESIGN.md), so the reproduction's
primary metric is *work*, measured in abstract cost units, accounted
honestly from what each execution strategy actually does:

* interpreting one EVM instruction costs ``EVM_STEP`` (decode + dispatch
  + stack traffic), while an AP node costs less (direct register ops,
  no decode): ``AP_COMPUTE`` / ``AP_READ`` / ``AP_WRITE`` / ``GUARD``;
* state I/O is charged by :mod:`repro.state.diskio` — cold lookups walk
  the trie, warm lookups hit caches; the prefetcher moves cold walks off
  the critical path;
* per-transaction fixed overheads: ``TX_FIXED`` for a from-scratch
  execution (signature check, context setup, pool bookkeeping) versus
  ``AP_FIXED`` for dispatching into a pre-built AP (signature checking
  for heard transactions happens in advance — paper §2 fn. 5).

Wall-clock time is also recorded by the benches as a secondary,
directional check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cost of interpreting one EVM instruction.
EVM_STEP = 9
#: Cost of one AP compute node.  S-EVM is still interpreted (the
#: paper's accelerator interprets its register IR); the win comes from
#: executing ~10x fewer instructions and skipping memoized segments,
#: not from cheaper per-instruction dispatch.
AP_COMPUTE = 7
#: Cost of one AP read node (cache probe + register store), excluding
#: the I/O charged by the disk model.
AP_READ = 6
#: Cost of applying one buffered write.
AP_WRITE = 45
#: Cost of one guard check / case-branch.
GUARD = 2
#: Cost of one shortcut lookup (tuple build + dict probe).
SHORTCUT_PROBE = 3
#: Fixed per-transaction overhead of a from-scratch execution.
TX_FIXED = 2600
#: Fixed per-transaction overhead of an AP dispatch.
AP_FIXED = 250
#: Fixed overhead when an AP exists but falls back (constraint
#: violation): the AP dispatch plus the from-scratch run minus the
#: signature check already done in advance.
FALLBACK_FIXED = 900
#: Per-transaction overhead Forerunner's bookkeeping adds to unheard
#: transactions (the paper observes a 0.81x slowdown on those).
UNHEARD_OVERHEAD_FACTOR = 1.23

#: Relative speed of the speculator (off the critical path): the paper
#: reports pre-execution + synthesis at ~12.19x a plain execution.
SPECULATION_COST_FACTOR = 12.19

#: Cost of fingerprinting one traced instruction (synthesis dedup:
#: hashing the trace is what replaces translate/optimize on a hit).
FINGERPRINT_STEP = 1

# -- witness checking (repro.witness) ---------------------------------------
#
# Validating a speculative result from its execution witness replays
# the constraint checks and applies the recorded state delta — no
# re-execution.  The checker's work is dict probes and compares, so
# its per-item costs sit at the guard/shortcut scale, far below the
# node costs of actually executing anything.

#: Fixed per-witness overhead (decode + digest bookkeeping).
WITNESS_FIXED = 25
#: Cost of replaying one recorded constraint (state probe + compare).
WITNESS_CHECK = 2
#: Cost of verifying + applying one state-delta entry.
WITNESS_APPLY = 5


def witness_check_cost(constraints: int, deltas: int) -> int:
    """Cost units of validating one witness (no re-execution)."""
    return (WITNESS_FIXED + constraints * WITNESS_CHECK
            + deltas * WITNESS_APPLY)


@dataclass
class CostTally:
    """Accumulates the cost of executing one transaction one way."""

    cpu_units: int = 0
    io_units: int = 0
    fixed_units: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.cpu_units + self.io_units + self.fixed_units

    def add_cpu(self, amount: int, bucket: str = "cpu") -> None:
        self.cpu_units += amount
        self.detail[bucket] = self.detail.get(bucket, 0) + amount


def evm_execution_cost(instruction_count: int, io_units: int,
                       fixed: int = TX_FIXED,
                       write_ops: int = 0) -> CostTally:
    """Cost of a from-scratch EVM execution.

    ``write_ops`` get the same journaling/commit surcharge the AP's
    buffered writes pay, keeping the two strategies comparable.
    """
    tally = CostTally(fixed_units=fixed, io_units=io_units)
    tally.add_cpu(instruction_count * EVM_STEP, "interpret")
    if write_ops:
        tally.add_cpu(write_ops * AP_WRITE, "write")
    return tally
