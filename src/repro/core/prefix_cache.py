"""Shared-prefix context cache for the speculator.

The multi-future predictor emits many :class:`FutureContext`s whose
predecessor lists share prefixes — every context of one transaction
carries the sender's mandatory nonce chain, and the greedy ordering
reuses the same price-sorted predecessors across target transactions.
The seed speculator rebuilt each context from scratch, re-executing the
shared predecessors once per context.

This cache materializes each distinct ``(header, predecessor prefix)``
once per committed head as a frozen copy-on-write :class:`StateDB`
(:meth:`StateDB.fork`); later contexts fork the longest cached prefix
and execute only the predecessors beyond it.  Because forks charge
ancestor-touched keys warm — the classification a single sequential
view would have produced — the target trace is byte-identical whether
the prefix came from the cache or was re-executed.

Keys embed the world's commit ``version``, so entries can never leak
across heads; :meth:`invalidate` additionally drops everything eagerly
on new canonical blocks and reorgs (``chainsync`` restores world
contents in place, which a version check alone would miss).

All counters are :class:`repro.obs.registry.Counter` instruments under
the cache's scope (``prefix_cache.*``); the legacy attribute names
(``hits``, ``pred_execs``, ...) remain available as read-only views so
:func:`repro.core.stats.speculation_cache_report` and existing tests
see identical values.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.chain.block import BlockHeader
from repro.obs.registry import MetricsRegistry, get_registry
from repro.state.statedb import StateDB


def context_key(world_version: int, header: BlockHeader,
                pred_hashes: Tuple[int, ...]) -> tuple:
    """Cache key for one materialized predecessor prefix.

    Every header field participates: predecessor execution reads the
    predicted header (TIMESTAMP, coinbase fee credit, ...), so two
    contexts only share a prefix state when their headers agree.
    """
    return (world_version,
            header.number, header.timestamp, header.coinbase,
            header.difficulty, header.gas_limit, header.chain_id,
            pred_hashes)


class PrefixEntry:
    """One frozen prefix state plus its cumulative execution cost."""

    __slots__ = ("state", "instructions", "io_units")

    def __init__(self, state: StateDB, instructions: int,
                 io_units: int) -> None:
        #: Frozen StateDB holding the post-prefix overlay.
        self.state = state
        #: Cumulative predecessor instructions across the whole prefix.
        self.instructions = instructions
        #: Cumulative predecessor I/O cost units across the prefix.
        self.io_units = io_units


class PrefixCache:
    """LRU cache of materialized predecessor prefixes.

    ``injector`` (a :class:`repro.faults.injector.FaultInjector`) makes
    the cache a chaos surface: faults at ``prefix_cache.lookup`` are
    contained *locally* as misses and faults at ``prefix_cache.store``
    skip caching — the cache is a pure accelerator, so local degradation
    is always safe and never needs to reach the guard layer.
    """

    def __init__(self, capacity: int = 256, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None, jit=None) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self.injector = injector
        #: Optional :class:`repro.evm.jit.tier.JitTier`.  Invalidation
        #: reasons that change code identity ("reorg") propagate to the
        #: tier from here, so every cache of derived execution
        #: artifacts is dropped at one point.
        self.jit = jit
        self._entries: "OrderedDict[tuple, PrefixEntry]" = OrderedDict()
        # -- instruments (core.stats / CLI surface these) ------------------
        obs = (registry or get_registry()).scope("prefix_cache")
        self.c_hits = obs.counter("hits")
        self.c_misses = obs.counter("misses")
        self.c_evictions = obs.counter("evictions")
        self.c_invalidations = obs.counter("invalidations")
        #: Predecessor executions actually performed vs. served from
        #: cached prefixes (the throughput benchmark's headline metric).
        self.c_pred_execs = obs.counter("pred_execs")
        self.c_pred_execs_avoided = obs.counter("pred_execs_avoided")
        #: Same, in executed-instruction units.
        self.c_pred_instructions = obs.counter("pred_instructions")
        self.c_pred_instructions_avoided = \
            obs.counter("pred_instructions_avoided")
        #: Redundant executions: re-materializations of a key already
        #: executed since the last invalidation.  Tracked whether the
        #: cache is enabled or not, so the disabled mode measures how
        #: much repeat work the seed speculator was doing (non-zero in
        #: enabled mode only when LRU eviction forces a re-execution).
        self.c_redundant_execs = obs.counter("redundant_execs")
        self.c_redundant_instructions = obs.counter("redundant_instructions")
        self._g_entries = obs.gauge("entries")
        self._seen: set = set()
        # Inverted indexes: tx hash -> keys pinning it (key[7] is the
        # predecessor tuple).  evict_tx is called once per committed
        # transaction on the node's critical path, so it must not scan
        # the whole cache; these keep it proportional to the entries
        # actually pinned.
        self._by_tx: dict = {}
        self._seen_by_tx: dict = {}

    # -- legacy counter views (read-only ints) ---------------------------

    @property
    def hits(self) -> int:
        return self.c_hits.value

    @property
    def misses(self) -> int:
        return self.c_misses.value

    @property
    def evictions(self) -> int:
        return self.c_evictions.value

    @property
    def invalidations(self) -> int:
        return self.c_invalidations.value

    @property
    def pred_execs(self) -> int:
        return self.c_pred_execs.value

    @property
    def pred_execs_avoided(self) -> int:
        return self.c_pred_execs_avoided.value

    @property
    def pred_instructions(self) -> int:
        return self.c_pred_instructions.value

    @property
    def pred_instructions_avoided(self) -> int:
        return self.c_pred_instructions_avoided.value

    @property
    def redundant_execs(self) -> int:
        return self.c_redundant_execs.value

    @property
    def redundant_instructions(self) -> int:
        return self.c_redundant_instructions.value

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[PrefixEntry]:
        """The entry at ``key`` (refreshing its LRU position) or None."""
        if not self.enabled:
            return None
        if (self.injector is not None
                and self.injector.evaluate("prefix_cache.lookup")
                is not None):
            return None  # contained locally: a lookup fault is a miss
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def store(self, key: tuple, entry: PrefixEntry) -> None:
        if not self.enabled:
            return
        if (self.injector is not None
                and self.injector.evaluate("prefix_cache.store")
                is not None):
            return  # contained locally: a store fault skips caching
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for tx in self._preds(key):
            self._by_tx.setdefault(tx, set()).add(key)
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self._unindex(self._by_tx, victim)
            self.c_evictions.inc()
        self._g_entries.set(len(self._entries))

    @staticmethod
    def _preds(key) -> tuple:
        """The predecessor-hash tuple of a :func:`context_key` (empty
        for the synthetic keys unit tests use)."""
        if type(key) is tuple and len(key) == 8:
            return key[7]
        return ()

    @classmethod
    def _unindex(cls, index: dict, key: tuple) -> None:
        for tx in cls._preds(key):
            bucket = index.get(tx)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[tx]

    def note_execution(self, key: tuple, instructions: int) -> bool:
        """Record that ``key``'s prefix step was just executed; returns
        (and counts) whether that execution was redundant — i.e. the
        same key was already executed since the last invalidation."""
        redundant = key in self._seen
        if redundant:
            self.c_redundant_execs.inc()
            self.c_redundant_instructions.inc(instructions)
        else:
            self._seen.add(key)
            for tx in self._preds(key):
                self._seen_by_tx.setdefault(tx, set()).add(key)
        return redundant

    def evict_tx(self, tx_hash: int) -> int:
        """Drop every prefix whose predecessor list pins ``tx_hash``.

        Called when a transaction leaves the pipeline (executed,
        dropped, or reorg-abandoned): any cached prefix that executed
        it as a predecessor keeps its overlay StateDB — and the fork
        chain beneath it — alive for no future benefit.  Returns the
        number of entries dropped.
        """
        stale = self._by_tx.pop(tx_hash, None)
        dropped = 0
        if stale:
            for key in stale:
                if self._entries.pop(key, None) is not None:
                    dropped += 1
                for tx in self._preds(key):
                    if tx != tx_hash:
                        bucket = self._by_tx.get(tx)
                        if bucket is not None:
                            bucket.discard(key)
                            if not bucket:
                                del self._by_tx[tx]
        seen_stale = self._seen_by_tx.pop(tx_hash, None)
        if seen_stale:
            for key in seen_stale:
                self._seen.discard(key)
                for tx in self._preds(key):
                    if tx != tx_hash:
                        bucket = self._seen_by_tx.get(tx)
                        if bucket is not None:
                            bucket.discard(key)
                            if not bucket:
                                del self._seen_by_tx[tx]
        if dropped:
            self._g_entries.set(len(self._entries))
        return dropped

    def invalidate(self, reason: str = "") -> int:
        """Drop every entry (new canonical head / reorg); returns the
        number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._seen.clear()
        self._by_tx.clear()
        self._seen_by_tx.clear()
        self._g_entries.set(0)
        if dropped:
            self.c_invalidations.inc()
        if self.jit is not None and reason == "reorg":
            # A reorg restores world contents in place: specialized
            # closures (and decoded-program caches) may embed branch
            # keys from the abandoned head, so they are invalidated
            # alongside the prefix entries.  New-head invalidations do
            # not qualify — closures read live state through guards.
            self.jit.invalidate(reason)
        return dropped
