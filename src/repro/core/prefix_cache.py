"""Shared-prefix context cache for the speculator.

The multi-future predictor emits many :class:`FutureContext`s whose
predecessor lists share prefixes — every context of one transaction
carries the sender's mandatory nonce chain, and the greedy ordering
reuses the same price-sorted predecessors across target transactions.
The seed speculator rebuilt each context from scratch, re-executing the
shared predecessors once per context.

This cache materializes each distinct ``(header, predecessor prefix)``
once per committed head as a frozen copy-on-write :class:`StateDB`
(:meth:`StateDB.fork`); later contexts fork the longest cached prefix
and execute only the predecessors beyond it.  Because forks charge
ancestor-touched keys warm — the classification a single sequential
view would have produced — the target trace is byte-identical whether
the prefix came from the cache or was re-executed.

Keys embed the world's commit ``version``, so entries can never leak
across heads; :meth:`invalidate` additionally drops everything eagerly
on new canonical blocks and reorgs (``chainsync`` restores world
contents in place, which a version check alone would miss).

All counters are :class:`repro.obs.registry.Counter` instruments under
the cache's scope (``prefix_cache.*``); the legacy attribute names
(``hits``, ``pred_execs``, ...) remain available as read-only views so
:func:`repro.core.stats.speculation_cache_report` and existing tests
see identical values.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.chain.block import BlockHeader
from repro.obs.registry import MetricsRegistry, get_registry
from repro.state.statedb import StateDB


def context_key(world_version: int, header: BlockHeader,
                pred_hashes: Tuple[int, ...]) -> tuple:
    """Cache key for one materialized predecessor prefix.

    Every header field participates: predecessor execution reads the
    predicted header (TIMESTAMP, coinbase fee credit, ...), so two
    contexts only share a prefix state when their headers agree.
    """
    return (world_version,
            header.number, header.timestamp, header.coinbase,
            header.difficulty, header.gas_limit, header.chain_id,
            pred_hashes)


class PrefixEntry:
    """One frozen prefix state plus its cumulative execution cost."""

    __slots__ = ("state", "instructions", "io_units")

    def __init__(self, state: StateDB, instructions: int,
                 io_units: int) -> None:
        #: Frozen StateDB holding the post-prefix overlay.
        self.state = state
        #: Cumulative predecessor instructions across the whole prefix.
        self.instructions = instructions
        #: Cumulative predecessor I/O cost units across the prefix.
        self.io_units = io_units


class PrefixCache:
    """LRU cache of materialized predecessor prefixes.

    ``injector`` (a :class:`repro.faults.injector.FaultInjector`) makes
    the cache a chaos surface: faults at ``prefix_cache.lookup`` are
    contained *locally* as misses and faults at ``prefix_cache.store``
    skip caching — the cache is a pure accelerator, so local degradation
    is always safe and never needs to reach the guard layer.
    """

    def __init__(self, capacity: int = 256, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self.injector = injector
        self._entries: "OrderedDict[tuple, PrefixEntry]" = OrderedDict()
        # -- instruments (core.stats / CLI surface these) ------------------
        obs = (registry or get_registry()).scope("prefix_cache")
        self.c_hits = obs.counter("hits")
        self.c_misses = obs.counter("misses")
        self.c_evictions = obs.counter("evictions")
        self.c_invalidations = obs.counter("invalidations")
        #: Predecessor executions actually performed vs. served from
        #: cached prefixes (the throughput benchmark's headline metric).
        self.c_pred_execs = obs.counter("pred_execs")
        self.c_pred_execs_avoided = obs.counter("pred_execs_avoided")
        #: Same, in executed-instruction units.
        self.c_pred_instructions = obs.counter("pred_instructions")
        self.c_pred_instructions_avoided = \
            obs.counter("pred_instructions_avoided")
        #: Redundant executions: re-materializations of a key already
        #: executed since the last invalidation.  Tracked whether the
        #: cache is enabled or not, so the disabled mode measures how
        #: much repeat work the seed speculator was doing (non-zero in
        #: enabled mode only when LRU eviction forces a re-execution).
        self.c_redundant_execs = obs.counter("redundant_execs")
        self.c_redundant_instructions = obs.counter("redundant_instructions")
        self._g_entries = obs.gauge("entries")
        self._seen: set = set()

    # -- legacy counter views (read-only ints) ---------------------------

    @property
    def hits(self) -> int:
        return self.c_hits.value

    @property
    def misses(self) -> int:
        return self.c_misses.value

    @property
    def evictions(self) -> int:
        return self.c_evictions.value

    @property
    def invalidations(self) -> int:
        return self.c_invalidations.value

    @property
    def pred_execs(self) -> int:
        return self.c_pred_execs.value

    @property
    def pred_execs_avoided(self) -> int:
        return self.c_pred_execs_avoided.value

    @property
    def pred_instructions(self) -> int:
        return self.c_pred_instructions.value

    @property
    def pred_instructions_avoided(self) -> int:
        return self.c_pred_instructions_avoided.value

    @property
    def redundant_execs(self) -> int:
        return self.c_redundant_execs.value

    @property
    def redundant_instructions(self) -> int:
        return self.c_redundant_instructions.value

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[PrefixEntry]:
        """The entry at ``key`` (refreshing its LRU position) or None."""
        if not self.enabled:
            return None
        if (self.injector is not None
                and self.injector.evaluate("prefix_cache.lookup")
                is not None):
            return None  # contained locally: a lookup fault is a miss
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def store(self, key: tuple, entry: PrefixEntry) -> None:
        if not self.enabled:
            return
        if (self.injector is not None
                and self.injector.evaluate("prefix_cache.store")
                is not None):
            return  # contained locally: a store fault skips caching
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.c_evictions.inc()
        self._g_entries.set(len(self._entries))

    def note_execution(self, key: tuple, instructions: int) -> bool:
        """Record that ``key``'s prefix step was just executed; returns
        (and counts) whether that execution was redundant — i.e. the
        same key was already executed since the last invalidation."""
        redundant = key in self._seen
        if redundant:
            self.c_redundant_execs.inc()
            self.c_redundant_instructions.inc(instructions)
        else:
            self._seen.add(key)
        return redundant

    def evict_tx(self, tx_hash: int) -> int:
        """Drop every prefix whose predecessor list pins ``tx_hash``.

        Called when a transaction leaves the pipeline (executed,
        dropped, or reorg-abandoned): any cached prefix that executed
        it as a predecessor keeps its overlay StateDB — and the fork
        chain beneath it — alive for no future benefit.  Returns the
        number of entries dropped.
        """
        stale = [key for key in self._entries if tx_hash in key[7]]
        for key in stale:
            del self._entries[key]
        self._seen = {key for key in self._seen if tx_hash not in key[7]}
        if stale:
            self._g_entries.set(len(self._entries))
        return len(stale)

    def invalidate(self, reason: str = "") -> int:
        """Drop every entry (new canonical head / reorg); returns the
        number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._seen.clear()
        self._g_entries.set(0)
        if dropped:
            self.c_invalidations.inc()
        return dropped
