"""Chain synchronization: block-tree tracking and reorg handling.

The paper's motivation includes temporary forks (§1: 8.4% of mined
blocks land on forks).  A node occasionally has to *switch* branches:
abandon the blocks it executed, restore the fork-point state, and
execute the winning branch.  :class:`ChainManager` wraps an execution
node with exactly that machinery, keeping bounded world snapshots per
recent block.

Speculation interacts nicely with reorgs: the transactions of abandoned
blocks return to the pending pool, and their (dropped) APs are simply
re-synthesized against the new head — correctness never depends on the
branch history because every execution path re-validates its guards
against the live state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.errors import ChainError
from repro.state.world import WorldState


class ChainManager:
    """Drives a node (Baseline or Forerunner) through a block tree.

    ``node`` must expose ``world`` (a WorldState it executes into) and
    ``process_block(block, now)``; ForerunnerNode additionally gets its
    pool replenished with un-executed transactions after a reorg.
    """

    def __init__(self, node, genesis: Block,
                 snapshot_depth: int = 8,
                 journal=None) -> None:
        if genesis.state_root is None:
            genesis.state_root = node.world.root()
        self.node = node
        self.chain = Blockchain(genesis)
        self.snapshot_depth = snapshot_depth
        self._snapshots: "OrderedDict[int, WorldState]" = OrderedDict()
        self._snapshot(genesis)
        self.reorgs = 0
        self.blocks_reexecuted = 0
        #: Optional :class:`repro.recovery.journal.JournalWriter`: when
        #: wired, branch switches become durable ``reorg`` records, so a
        #: node crashing mid-reorg can tell on restart which timeline
        #: its snapshot belongs to.
        self.journal = journal

    # -- internals ----------------------------------------------------------

    def _snapshot(self, block: Block) -> None:
        self._snapshots[block.hash] = self.node.world.copy()
        while len(self._snapshots) > self.snapshot_depth:
            self._snapshots.popitem(last=False)

    def _restore(self, block_hash: int) -> None:
        snapshot = self._snapshots.get(block_hash)
        if snapshot is None:
            raise ChainError(
                f"reorg beyond snapshot depth (fork point "
                f"{block_hash:#x} not retained)")
        # Replace the node's world contents in place: every component
        # holding a reference (speculator, prefetcher) keeps working,
        # and the version bump keeps version-keyed overlay caches from
        # serving state of the abandoned branch.
        self.node.world.replace_contents(snapshot)

    def _branch_to(self, block: Block):
        """(branch blocks, fork point): the path from the nearest
        snapshotted ancestor down to ``block``."""
        branch: List[Block] = []
        cursor: Optional[Block] = block
        while cursor is not None and cursor.hash not in self._snapshots:
            branch.append(cursor)
            cursor = self.chain.get(cursor.header.parent_hash)
        if cursor is None:
            raise ChainError("branch does not connect to a snapshot")
        branch.reverse()
        return branch, cursor

    def _requeue_abandoned(self, old_head: Block, fork_point: Block,
                           now: float) -> None:
        """Return abandoned blocks' transactions to the node's pool."""
        if not hasattr(self.node, "requeue"):
            return
        cursor: Optional[Block] = old_head
        while cursor is not None and cursor.hash != fork_point.hash:
            for tx in cursor.transactions:
                self.node.requeue(tx, now)
            cursor = self.chain.get(cursor.header.parent_hash)

    # -- public API ------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self.chain.head

    def receive_block(self, block: Block, now: float = 0.0):
        """Insert ``block``; execute it (and reorg) if it wins the race.

        Returns the node's BlockReport when the block extended or
        switched the head, None when it landed on a losing fork.
        """
        old_head = self.chain.head
        became_head = self.chain.add(block)
        if not became_head:
            return None
        if block.header.parent_hash == old_head.hash:
            report = self.node.process_block(block, now) \
                if _takes_now(self.node) else \
                self.node.process_block(block)
            self._snapshot(block)
            return report
        # Reorg: restore the fork point, replay the winning branch.
        self.reorgs += 1
        branch, fork_point = self._branch_to(block)
        if self.journal is not None:
            self.journal.append("reorg", {
                "old_head": f"{old_head.hash:#x}",
                "new_head": f"{block.hash:#x}",
                "fork_point": f"{fork_point.hash:#x}",
                "fork_number": fork_point.number,
                "branch_length": len(branch),
            }, sync=True)
        self._restore(fork_point.hash)
        on_reorg = getattr(self.node, "on_reorg", None)
        if on_reorg is not None:
            # Overlay caches (the speculator's prefix cache) were built
            # on the abandoned branch's state; drop them before the
            # winning branch executes.
            on_reorg()
        self._requeue_abandoned(old_head, fork_point, now)
        report = None
        for ancestor in branch:
            # Executed transactions on the new branch leave the pool
            # again via process_block's own bookkeeping.
            report = self.node.process_block(ancestor, now) \
                if _takes_now(self.node) else \
                self.node.process_block(ancestor)
            self._snapshot(ancestor)
            self.blocks_reexecuted += 1
        return report


def _takes_now(node) -> bool:
    """ForerunnerNode.process_block takes a ``now`` argument."""
    return hasattr(node, "run_speculation")
