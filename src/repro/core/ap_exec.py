"""AP execution: constraint checking + fast-path + shortcuts (paper §4.3).

Walks the merged AP tree against the *actual* execution context:

* READ nodes fetch live context values (prefetched, so warm),
* GUARD nodes both check constraints and case-branch between the
  constraint sets of different speculated futures,
* shortcut nodes skip memoized segments when input registers match,
* WRITE nodes are buffered and applied only at the terminal, so a
  constraint violation leaves no state to roll back.

Raises :class:`repro.errors.ConstraintViolation` when no constraint set
is satisfied; the accelerator then falls back to plain EVM execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.ap import (
    AcceleratedProgram,
    APNode,
    Terminal,
    observed_branch_key,
)
from repro.core.costmodel import CostTally
from repro.core.optimize import evaluate_compute
from repro.core.sevm import Reg, SInstr, SKind, is_reg
from repro.errors import ConstraintViolation
from repro.state.statedb import StateDB
from repro.utils.words import int_to_bytes32


@dataclass
class APExecStats:
    """Instruction-level counters for one AP execution (§5.5)."""

    executed_nodes: int = 0
    skipped_nodes: int = 0
    shortcut_hits: int = 0
    shortcut_misses: int = 0
    guards_checked: int = 0


@dataclass
class APOutcome:
    """Result of a successful AP execution."""

    success: bool
    gas_used: int
    return_data: bytes
    terminal: Terminal
    stats: APExecStats = field(default_factory=APExecStats)
    #: Context values observed by the READ nodes this execution walked,
    #: keyed like read sets: (kind, key) -> value.  Used to classify
    #: perfect vs imperfect predictions without extra state reads.
    observed_reads: Dict[tuple, int] = field(default_factory=dict)


def _read_value(instr: SInstr, regs: Dict[Reg, int], state: StateDB,
                header: BlockHeader,
                blockhash_fn: Callable[[int], int]) -> Tuple[tuple, int]:
    """Fetch the live context value for a READ node.

    Returns ((kind, key), value) where the key matches the read-set
    convention of :mod:`repro.core.trace`.
    """
    def val(operand) -> int:
        return regs[operand] if is_reg(operand) else operand

    op = instr.op
    if op == "SLOAD":
        slot = val(instr.args[0])
        return (("storage", (instr.key[0], slot)),
                state.get_storage(instr.key[0], slot))
    if op == "BALANCE":
        address = val(instr.args[0])
        return ("balance", (address,)), state.get_balance(address)
    if op == "BLOCKHASH":
        number = val(instr.args[0])
        return ("blockhash", (number,)), blockhash_fn(number)
    if op == "EXTCODESIZE":
        address = val(instr.args[0])
        return (("extcodesize", (address,)),
                len(state.get_code(address)))
    # Header fields: the translator stores the field name as the key,
    # e.g. key=("timestamp",) for TIMESTAMP.
    field_name = instr.key[0]
    return ("header", (field_name,)), getattr(header, field_name)


def materialize_return(pieces: List[Tuple[int, tuple]], size: int,
                       regs: Dict[Reg, int]) -> bytes:
    """Build the return-data bytes from the terminal's piece layout."""
    if size == 0:
        return b""
    buf = bytearray(size)
    for rel_off, piece in pieces:
        kind = piece[0]
        if kind == "bytes":
            payload = piece[1]
            buf[rel_off:rel_off + len(payload)] = payload
        elif kind == "reg":
            _, reg, src_start, length = piece
            word = int_to_bytes32(regs[reg])
            buf[rel_off:rel_off + length] = word[src_start:src_start + length]
        # "zero": already zero
    return bytes(buf)


# pylint: disable=too-many-branches,too-many-statements
def execute_ap(
    ap: AcceleratedProgram,
    state: StateDB,
    header: BlockHeader,
    tx: Transaction,
    tally: Optional[CostTally] = None,
    blockhash_fn: Optional[Callable[[int], int]] = None,
) -> APOutcome:
    """Run the AP against the actual context.

    Applies the path's state writes (storage, logs) on success; raises
    :class:`ConstraintViolation` — with no state modified — otherwise.
    The transaction envelope (nonce, fee purchase, value transfer) is
    the accelerator's responsibility, exactly mirroring
    :meth:`repro.evm.interpreter.EVM.execute_transaction`.
    """
    del tx  # identity only; all tx-derived values are baked in as constants
    if tally is None:
        tally = CostTally()
    blockhash_fn = blockhash_fn or (lambda n: 0)
    stats = APExecStats()
    regs: Dict[Reg, int] = {}
    write_buffer: List[SInstr] = []
    observed_reads: Dict[tuple, int] = {}

    def val(operand) -> int:
        return regs[operand] if is_reg(operand) else operand

    node: object = ap.root
    while isinstance(node, APNode):
        shortcut = node.shortcut
        if shortcut is not None:
            tally.add_cpu(costmodel.SHORTCUT_PROBE, "shortcut")
            try:
                key = tuple(regs[r] for r in shortcut.input_regs)
            except KeyError:
                key = None
            entry = shortcut.entries.get(key) if key is not None else None
            if entry is not None:
                outputs, resume = entry
                regs.update(outputs)
                stats.shortcut_hits += 1
                stats.skipped_nodes += shortcut.length
                node = resume
                continue
            stats.shortcut_misses += 1

        instr = node.instr
        stats.executed_nodes += 1
        kind = instr.kind
        if kind is SKind.COMPUTE:
            tally.add_cpu(costmodel.AP_COMPUTE, "compute")
            regs[instr.dest] = evaluate_compute(
                instr, tuple(val(a) for a in instr.args))
            node = node.next
            continue
        if kind is SKind.READ:
            tally.add_cpu(costmodel.AP_READ, "read")
            context_key, value = _read_value(
                instr, regs, state, header, blockhash_fn)
            regs[instr.dest] = value
            observed_reads.setdefault(context_key, value)
            node = node.next
            continue
        if kind is SKind.GUARD:
            tally.add_cpu(costmodel.GUARD, "guard")
            stats.guards_checked += 1
            values = tuple(val(a) for a in instr.args)
            key = observed_branch_key(node.instr, values)
            child = node.branches.get(key) if key is not None else None
            if child is None:
                raise ConstraintViolation(
                    f"guard {instr!r} observed {values}")
            node = child
            continue
        # WRITE: buffer until the terminal (rollback-free execution).
        tally.add_cpu(costmodel.GUARD, "write-buffer")
        write_buffer.append(instr)
        node = node.next

    if not isinstance(node, Terminal):
        raise ConstraintViolation("AP tree ended without a terminal")

    # Commit phase: constraints satisfied, apply the buffered effects.
    for instr in write_buffer:
        tally.add_cpu(costmodel.AP_WRITE, "write")
        if instr.op == "SSTORE":
            state.set_storage(instr.key[0], val(instr.args[0]),
                              val(instr.args[1]))
        else:  # LOG
            topic_count = instr.meta["topic_count"]
            topics = tuple(val(a) for a in instr.args[:topic_count])
            words = [val(a) for a in instr.args[topic_count:]]
            size = instr.meta["data_size"]
            data = b"".join(int_to_bytes32(w) for w in words)[:size]
            state.add_log(instr.key[0], topics, data)

    return_data = materialize_return(
        node.return_pieces, node.return_size, regs)
    return APOutcome(
        success=node.success,
        gas_used=node.gas_used,
        return_data=return_data,
        terminal=node,
        stats=stats,
        observed_reads=observed_reads,
    )
