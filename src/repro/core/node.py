"""Node assemblies: a baseline node and a Forerunner node.

The evaluation (paper §5) runs Forerunner as a node processing the same
stream of transactions and blocks as an unmodified client.  Here both
node types consume an identical stream; the baseline's per-transaction
execution cost is the speedup denominator.

The Forerunner node wires together the multi-future predictor, the
speculator (with a simulated worker pool, so APs only become available
when their synthesis would really have finished), the prefetcher, and
the transaction execution accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.accelerator import (
    OUTCOME_FAULTED,
    OUTCOME_NO_AP,
    TransactionAccelerator,
)
from repro.core.predictor import MultiFuturePredictor, PredictorConfig
from repro.core.prefetcher import Prefetcher
from repro.core.speculator import Speculator
from repro.errors import ChainError
from repro.evm.jit.tier import JitTier
from repro.faults.guard import SpeculationGuard
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import NullTracer, SpanTracer
from repro.sched.admission import AdmissionController
from repro.sched.executor import ParallelBlockExecutor
from repro.sched.lanes import LaneSet, SchedConfig
from repro.state.nodecache import NodeCache
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.witness.format import ExecutionWitness
from repro.witness.recorder import ap_context_ids, build_witness


@dataclass
class TxRecord:
    """Everything the evaluation needs about one executed transaction."""

    tx_hash: int
    block_number: int
    gas_used: int
    success: bool
    cost: int
    cpu_units: int = 0
    io_units: int = 0
    #: Number of state lookups (cold + warm) this execution performed.
    io_reads: int = 0
    heard: bool = True
    heard_delay: float = 0.0
    outcome: str = OUTCOME_NO_AP
    ap_ready: bool = False
    perfect: bool = False
    first_context_perfect: bool = False
    speculated_contexts: int = 0
    shortcut_hits: int = 0
    executed_nodes: int = 0
    skipped_nodes: int = 0
    #: Execution tier that produced the committed result
    #: ("plain" | "walk" | "jit").
    tier: str = "plain"


@dataclass
class BlockReport:
    """Per-block outcome: records plus the post-state Merkle root."""

    block_number: int
    state_root: int
    records: List[TxRecord] = field(default_factory=list)
    #: Scheduler outcome for this block (``None`` on the baseline node):
    #: lane utilization, conflict rate, abort counts, critical path.
    sched: Optional[dict] = None


class BaselineNode:
    """Unmodified execution node (the speedup denominator)."""

    def __init__(self, world: Optional[WorldState] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.world = world if world is not None else WorldState()
        self.node_cache = NodeCache()
        self.accelerator = TransactionAccelerator()
        self.reports: List[BlockReport] = []
        obs = (registry or get_registry()).scope("baseline")
        self.c_blocks = obs.counter("blocks")
        self.c_txs = obs.counter("transactions")
        self.c_cost = obs.counter("execution_cost")

    def process_block(self, block: Block) -> BlockReport:
        """Execute every transaction in order; commit; return the report."""
        state = StateDB(self.world, node_cache=self.node_cache)
        records: List[TxRecord] = []
        for tx in block.transactions:
            stats = state.disk.stats
            reads_before = (stats.cold_account_loads
                            + stats.cold_slot_loads + stats.warm_hits)
            receipt = self.accelerator.execute_plain(
                tx, block.header, state)
            reads_after = (stats.cold_account_loads
                           + stats.cold_slot_loads + stats.warm_hits)
            records.append(TxRecord(
                tx_hash=tx.hash,
                block_number=block.number,
                gas_used=receipt.result.gas_used,
                success=receipt.result.success,
                cost=receipt.tally.total,
                cpu_units=receipt.tally.cpu_units,
                io_units=receipt.tally.io_units,
                io_reads=reads_after - reads_before,
            ))
        state.commit()
        self.c_blocks.inc()
        self.c_txs.inc(len(records))
        self.c_cost.inc(sum(r.cost for r in records))
        report = BlockReport(block.number, self.world.root(), records)
        self.reports.append(report)
        return report


@dataclass
class ForerunnerConfig:
    """Tunables for the Forerunner node."""

    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    #: Parallel speculation workers (pre-computation does not compete
    #: with the critical path — paper §2 fn. 4).
    workers: int = 8
    #: Simulated worker throughput in cost units per second.
    worker_speed: float = 1.8e7
    #: Upper bound on contexts speculated per transaction per head.
    max_contexts_per_head: int = 4
    #: Hard cap on total contexts per transaction across heads.
    max_total_contexts: int = 16
    #: Ablation switches.
    enable_memoization: bool = True
    enable_prefetch: bool = True
    #: Shared-prefix context cache: materialize each distinct
    #: (header, predecessor-prefix) once per head and fork it.
    enable_prefix_cache: bool = True
    #: Trace-fingerprint synthesis dedup: clone an already-merged
    #: identical path instead of re-running translate/optimize.
    enable_synth_dedup: bool = True
    #: Max cached predecessor prefixes (LRU).
    prefix_cache_capacity: int = 1024
    #: Shortcut-selection heuristic: "coarse" | "default" | "fine".
    memoization_strategy: str = "default"
    #: Optional :class:`repro.core.optimize.PassConfig` ablating the
    #: specialization passes.
    pass_config: object = None
    #: Observability: record per-stage spans (deterministic cost-unit
    #: timing).  Disabling swaps in a no-op tracer; pipeline outputs
    #: (traces, APs, Merkle roots, Tables 2/3) are identical either way.
    enable_obs: bool = True
    #: Bound on cached trace fingerprints per transaction (synthesis
    #: dedup LRU).
    dedup_capacity_per_tx: int = 16
    #: Bound on memoized accelerated programs (deterministic LRU; the
    #: default is far above any evaluation-sized pool, so Tables 2/3
    #: are byte-identical to the unbounded seed — only a long-running
    #: live node ever evicts).
    memo_capacity: int = 4096
    #: Chaos testing: a :class:`repro.faults.injector.FaultPlan` to run
    #: the node under.  ``None`` (the default) installs the no-op
    #: injector; the guard/breaker machinery is always active either
    #: way, so real faults degrade gracefully too.
    fault_plan: object = None
    #: Trace-guided specialization tier (repro.evm.jit): compile hot
    #: AP trees to straight-line Python closures.  Commits are
    #: byte-identical either way (the conformance suite and the
    #: jit-on/jit-off CI check prove it); the tier only changes
    #: wall-clock time and the ``jit.*`` counters.
    enable_jit: bool = True
    #: Contexts an AP must accumulate before it is compiled (a
    #: fingerprint-dedup hit also qualifies as hot).  1 = compile on
    #: every merge: compilation is off the critical path, so eager
    #: compilation buys commit-time speed for one off-path compile.
    jit_hot_threshold: int = 1
    #: Specialization bails out (stays interpreted) above this size.
    jit_max_nodes: int = 4096
    #: Concurrency scheduler (repro.sched): parallel execution lanes,
    #: admission budgets, and the bounded prefetch queue.  Any lane
    #: count commits byte-identical state; parallelism shows up only in
    #: the scheduler's own critical-path metrics.
    sched: SchedConfig = field(default_factory=SchedConfig)
    #: Emit a per-transaction execution witness (repro.witness):
    #: constraints, net state delta, and digests, assembled from the
    #: master journal before each block commits.  Off by default —
    #: commits and every Table 2/3 number are byte-identical either
    #: way; ``repro verify`` turns it on to run the WitnessChecker.
    enable_witness: bool = False


def tx_to_wire(tx: Transaction) -> dict:
    """The canonical wire form of a transaction: a JSON-safe mapping
    whose canonical-JSON encoding is the byte-stable frame every
    cross-replica message (gossip, pool sync, speculation dispatch)
    carries.  ``tx_from_wire(tx_to_wire(tx))`` reconstructs a
    transaction with the same hash — the round-trip invariant the
    fleet's dispatch path asserts on every delivery."""
    return {
        "sender": tx.sender,
        "to": tx.to,
        "data": tx.data.hex(),
        "value": tx.value,
        "gas_price": tx.gas_price,
        "gas_limit": tx.gas_limit,
        "nonce": tx.nonce,
    }


def tx_from_wire(data: dict) -> Transaction:
    """Decode :func:`tx_to_wire` output back into a transaction."""
    return Transaction(
        sender=int(data["sender"]),
        to=None if data["to"] is None else int(data["to"]),
        data=bytes.fromhex(data["data"]),
        value=int(data["value"]),
        gas_price=int(data["gas_price"]),
        gas_limit=int(data["gas_limit"]),
        nonce=int(data["nonce"]),
    )


class LocalSpecPlane:
    """Default speculation plane: every job runs on the owning node.

    The *speculation plane* is the seam between one node's prediction/
    admission machinery and the speculator that performs each admitted
    job.  A single node is its own plane; the fleet runtime
    (:mod:`repro.fleet.supervisor`) installs a sharded plane on its
    coordinator so that one global admission cycle — identical, request
    for request, to the single-node cycle — dispatches each job to the
    replica owning the transaction's shard.  Because the *lane clocks*
    stay with the plane's owner, AP readiness times (and with them
    every Table 2/3 number) are byte-identical however the work is
    spread.

    The plane also owns the *serialize/deliver* seam: a speculation job
    crossing a replica boundary travels as :meth:`serialize_job` output
    and is reconstructed by :meth:`deliver_job`.  Locally both are
    exercised too (the job round-trips through its canonical frame), so
    a serialization bug can never hide behind single-node runs.
    """

    __slots__ = ("node",)

    def __init__(self, node: "ForerunnerNode") -> None:
        self.node = node

    def components(self, tx: Transaction):
        """``(speculator, sink)`` for one job: the speculator that runs
        it and the node whose bookkeeping records the outcome."""
        # Exercise the serialize/deliver seam even though the job never
        # leaves this process: the frame must reconstruct to the same
        # hash, or this raises before the job runs.
        self.deliver_job(self.serialize_job(tx))
        return self.node.speculator, self.node

    def serialize_job(self, tx: Transaction) -> dict:
        """The canonical frame payload for one speculation job."""
        return {"hash": tx.hash, "tx": tx_to_wire(tx)}

    def deliver_job(self, payload: dict) -> Transaction:
        """Reconstruct a dispatched job, asserting hash fidelity."""
        tx = tx_from_wire(payload["tx"])
        if tx.hash != int(payload["hash"]):
            raise ChainError(
                f"speculation job frame corrupt: hash "
                f"{int(payload['hash']):#x} decoded to {tx.hash:#x}")
        return tx

    def prefetch_targets(self):
        """Nodes whose caches a drained prefetch request must warm."""
        return (self.node,)

    def ap_for(self, tx_hash: int):
        """The AP block execution should use for ``tx_hash``.

        Locally that is the node's own speculator's; the fleet plane
        serves a per-block snapshot taken from the owning replicas, so
        every replica executes with the same APs a single node would.
        """
        return self.node.speculator.get_ap(tx_hash)


class ForerunnerNode:
    """Full Forerunner node (paper Figure 3)."""

    def __init__(self, world: Optional[WorldState] = None,
                 config: Optional[ForerunnerConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None) -> None:
        self.world = world if world is not None else WorldState()
        self.config = config or ForerunnerConfig()
        self.registry = registry or get_registry()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.enable_obs:
            self.tracer = SpanTracer(self.registry)
        else:
            self.tracer = NullTracer()
        obs = self.registry.scope("node")
        self.c_blocks = obs.counter("blocks")
        self.c_txs = obs.counter("transactions")
        self.c_cost = obs.counter("execution_cost")
        self.c_heard = obs.counter("heard")
        self.c_satisfied = obs.counter("satisfied")
        self.c_spec_cycles = obs.counter("speculation_cycles")
        self.c_reorgs = obs.counter("reorgs")
        self.node_cache = NodeCache()
        # Chaos layer: the injector evaluates the configured fault plan
        # (no-op without one); the guard contains every speculative
        # fault and hosts the per-contract circuit breaker.  One guard
        # serves all components so containment counts are centralized.
        if self.config.fault_plan is not None:
            self.fault_injector = FaultInjector(self.config.fault_plan,
                                                registry=self.registry)
        else:
            self.fault_injector = NULL_INJECTOR
        self.guard = SpeculationGuard(registry=self.registry)
        self.predictor = MultiFuturePredictor(self.config.predictor,
                                              registry=self.registry,
                                              injector=self.fault_injector)
        self.jit = JitTier(enabled=self.config.enable_jit,
                           hot_threshold=self.config.jit_hot_threshold,
                           max_nodes=self.config.jit_max_nodes,
                           registry=self.registry)
        self.speculator = Speculator(
            self.world,
            pass_config=self.config.pass_config,
            enable_memoization=self.config.enable_memoization,
            memoization_strategy=self.config.memoization_strategy,
            enable_prefix_cache=self.config.enable_prefix_cache,
            enable_synth_dedup=self.config.enable_synth_dedup,
            prefix_cache_capacity=self.config.prefix_cache_capacity,
            dedup_capacity_per_tx=self.config.dedup_capacity_per_tx,
            memo_capacity=self.config.memo_capacity,
            registry=self.registry,
            tracer=self.tracer,
            injector=self.fault_injector,
            guard=self.guard,
            jit=self.jit)
        self.prefetcher = Prefetcher(self.world, self.node_cache,
                                     registry=self.registry,
                                     injector=self.fault_injector)
        self.accelerator = TransactionAccelerator(
            jit=self.jit,
            record_witnesses=self.config.enable_witness)
        self.reports: List[BlockReport] = []
        #: Execution witnesses in commit order (``enable_witness`` only).
        self.witnesses: List[ExecutionWitness] = []
        # Pending pool: hash -> (tx, heard_time).
        self.pool: Dict[int, Tuple[Transaction, float]] = {}
        #: All hashes ever heard before execution (Table 1's heard set).
        self.heard: Dict[int, float] = {}
        #: Already-executed hashes (late gossip arrivals are ignored).
        self.executed: set = set()
        self._pool_version = 0
        self._last_spec_state: Tuple[int, int] = (-1, -1)
        # Speculation dispatch goes through admission control: scoring,
        # per-(tx, head)/total caps, per-head budgets, bounded deferral
        # and the bounded prefetch queue all live there.
        self.admission = AdmissionController(
            self.config.sched,
            max_contexts_per_head=self.config.max_contexts_per_head,
            max_total_contexts=self.config.max_total_contexts,
            registry=self.registry,
            injector=self.fault_injector,
            breaker=self.guard.breaker)
        #: Simulated speculation worker pool: one lane per worker,
        #: clocks in simulated seconds (same dispatch rule the scalar
        #: pool used: least-loaded lane, ties to the lowest id).
        self._worker_lanes = LaneSet(self.config.workers)
        #: Conflict-aware parallel block executor (``lanes=1`` is the
        #: exact legacy serial loop).
        self.executor = ParallelBlockExecutor(
            lanes=self.config.sched.lanes,
            registry=self.registry,
            injector=self.fault_injector,
            guard=self.guard)
        self.head_number = 0
        #: Simulated time of the block currently being processed (the
        #: executor's per-tx strategy reads it for AP readiness).
        self._block_now = 0.0
        #: Transactions whose AP merge produced a first-context record
        #: (for the single-future comparator): tx -> first context id.
        self.first_context: Dict[int, int] = {}
        #: Speculation plane: where admitted jobs run.  The default is
        #: this node itself; the fleet supervisor installs a sharded
        #: plane on its coordinator (see :class:`LocalSpecPlane`).
        self.spec_plane = LocalSpecPlane(self)

    # -- compatibility views over the admission/lane state ---------------------

    @property
    def _workers(self) -> List[float]:
        """Simulated worker availability times (lane clocks)."""
        return [lane.clock for lane in self._worker_lanes.lanes]

    @property
    def _spec_counts(self) -> Dict[Tuple[int, int], int]:
        """Per (tx, head) speculation counters (admission-owned)."""
        return self.admission.spec_counts

    @property
    def _total_spec(self) -> Dict[int, int]:
        """Per-tx total speculation counters (admission-owned)."""
        return self.admission.total_spec

    # -- dissemination ---------------------------------------------------------

    def on_transaction(self, tx: Transaction, now: float) -> None:
        """A pending transaction arrived from the P2P network."""
        if (tx.hash in self.pool or tx.hash in self.heard
                or tx.hash in self.executed):
            return
        self.pool[tx.hash] = (tx, now)
        self.heard[tx.hash] = now
        self._pool_version += 1

    def on_reorg(self) -> None:
        """The chain manager switched branches: the world's contents
        were restored in place (no commit, no version bump), so cached
        prefixes AND cached dedup fingerprints must be dropped
        explicitly — both reference state of the abandoned branch."""
        self.c_reorgs.inc()
        self.speculator.on_reorg()

    def requeue(self, tx: Transaction, now: float) -> None:
        """Return an abandoned (reorged-out) transaction to the pool,
        preserving its original heard time.

        The transaction re-enters speculation *from scratch* on the new
        branch: its admission counters, first-context bookkeeping, any
        deferred speculation requests and its AP are all dropped — they
        were produced against heads of the abandoned branch, so reusing
        them would speculate (and score priorities) against stale
        state.  The cleared caps also mean the predictor can re-admit
        it under the winning head instead of finding it capped out.
        """
        self.executed.discard(tx.hash)
        # Stale speculation capital: the AP (and its fingerprints) were
        # synthesized against abandoned-branch contexts; discard rather
        # than drop so §5.5 aggregates don't count dead-branch work.
        self.speculator.discard(tx.hash)
        self.first_context.pop(tx.hash, None)
        self.admission.release(tx.hash)
        if tx.hash in self.pool:
            return
        heard_time = self.heard.get(tx.hash, now)
        self.pool[tx.hash] = (tx, heard_time)
        self.heard.setdefault(tx.hash, heard_time)
        self._pool_version += 1

    # -- speculation (off the critical path) -------------------------------------

    def run_speculation(self, now: float,
                        budget_seconds: Optional[float] = None) -> int:
        """One prediction + speculation cycle starting at sim time ``now``.

        Jobs are assigned to the simulated worker pool; each AP's
        ``ready_at`` reflects when its last merge would really finish.
        Returns the number of pre-executions performed.
        """
        if not self.pool and not self.admission.has_backlog():
            return 0
        state_key = (self.head_number, self._pool_version)
        if state_key == self._last_spec_state \
                and not self.admission.has_backlog():
            return 0  # nothing changed since the last cycle
        self._last_spec_state = state_key
        self.c_spec_cycles.inc()
        pending = [tx for tx, _ in self.pool.values()]
        # A predictor fault costs one speculation cycle, nothing more:
        # the guard contains it and the node simply has no candidates.
        prediction, _ = self.guard.run(
            "predictor.predict",
            lambda: self.predictor.predict(
                pending, block_gas_limit=15_000_000),
            fallback=None)
        candidates: List[Tuple[Transaction, list]] = []
        if prediction is not None:
            candidates = [(tx, prediction.contexts.get(tx.hash, []))
                          for tx in prediction.candidates]
        # Admission: score (hit-likelihood x gas price), order, apply
        # the context caps / per-head budget / queue bound, re-admit
        # deferred carry-over.  A contained admission fault skips the
        # whole cycle (no speculation, nothing else lost).
        admitted, _ = self.guard.run(
            "sched.admit",
            lambda: self.admission.admit(candidates, self.head_number),
            fallback=[], count_fallback=False)
        jobs = 0
        deadline = now + budget_seconds if budget_seconds else None
        lanes = self._worker_lanes
        for request in admitted or []:
            # Deferred requests were admitted a cycle ago: re-check the
            # caps, which may have filled since.
            if not self.admission.allows_dispatch(request, now):
                continue
            lane = lanes.least_loaded()
            start = max(now, lane.clock)
            if deadline is not None and start >= deadline:
                # Out of cycle budget: carry the request over instead
                # of silently skipping it.
                self.admission.defer([request], self.head_number)
                continue
            if start - now > self.config.sched.max_lane_backlog_seconds:
                # Backpressure: every lane is backlogged beyond the
                # configured horizon; don't pile further work on.
                self.admission.defer([request], self.head_number)
                continue
            tx, context = request.tx, request.context
            # The plane decides which speculator runs this job (the
            # local one, or — under the fleet — the owning replica's).
            speculator, sink = self.spec_plane.components(tx)
            # Workers are scheduled by the *logical* cost — what an
            # uncached speculator would pay — so AP readiness (and
            # with it every Table 2/3 number) is identical whether
            # the prefix cache / synthesis dedup are on or off; the
            # actual (cheaper) cost feeds §5.6 accounting instead.
            cost_before = speculator.total_logical_cost
            path = speculator.speculate(tx, context)
            job_cost = (speculator.total_logical_cost
                        - cost_before)
            # Chaos: a stalled worker "timeout" adds cost units to
            # this job's schedule, delaying when its AP is ready.
            job_cost += self.fault_injector.stall_units(tx=tx.hash)
            completion = lanes.dispatch(
                job_cost / self.config.worker_speed,
                not_before=now, payload=tx.hash)
            jobs += 1
            self.admission.note_dispatched(request)
            # Feed the hit-likelihood estimator: a merged path means
            # this contract's speculations are landing.
            self.admission.observe(tx.to, path is not None)
            if path is not None:
                ap = speculator.get_ap(tx.hash)
                if ap is not None:
                    if ap.ready_at == 0.0 or len(ap.paths) == 1:
                        # First successful merge decides readiness;
                        # later merges refine an already-usable AP.
                        ap.ready_at = completion.finish
                    sink.first_context.setdefault(
                        tx.hash, context.context_id)
                    if self.config.enable_prefetch:
                        self.admission.queue_prefetch(
                            ap.prefetch_keys, tx_sender=tx.sender,
                            tx_to=tx.to, score=request.score)
        self._drain_prefetch_queue()
        return jobs

    def _drain_prefetch_queue(self) -> None:
        """Drain the bounded prefetch queue (FIFO, so cost accounting
        matches the legacy immediate-prefetch order)."""
        limit = self.config.sched.prefetch_drain_per_cycle
        targets = self.spec_plane.prefetch_targets()
        for request in self.admission.drain_prefetches(limit):
            # Chaos: a queue fault drops the request — the keys stay
            # cold (slower reads, same values).
            if self.fault_injector.evaluate(
                    "sched.prefetch_queue",
                    tx_sender=request.tx_sender) is not None:
                continue
            # Contained: a prefetch fault leaves the keys cold.  Under
            # the fleet plane every replica's cache is warmed — cache
            # state (and therefore every execution cost) must stay
            # identical across replicas.
            for target in targets:
                self.guard.run(
                    "prefetcher.prefetch",
                    lambda request=request, target=target:
                        target.prefetcher.prefetch(
                            request.keys,
                            tx_sender=request.tx_sender,
                            tx_to=request.tx_to),
                    count_fallback=False)

    # -- execution (the critical path) ----------------------------------------------

    def _execute_accelerated(self, tx: Transaction, block: Block,
                             state: StateDB, ap):
        """AP execution with a containment boundary around it.

        The accelerator already converts constraint violations into the
        plain fallback internally; this boundary additionally contains
        *everything else* — injected faults and genuine bugs alike — by
        reverting any partial state mutation and re-running the plain
        path (the correctness anchor, which stays unguarded: an error
        there is a real error and must surface).
        """
        def attempt():
            self.fault_injector.maybe_raise("accelerator.execute",
                                            tx=tx.hash, contract=tx.to)
            return self.accelerator.execute(tx, block.header, state, ap)

        snap = state.snapshot()
        logs_mark = len(state.logs)
        receipt, faulted = self.guard.run("accelerator.execute", attempt)
        if faulted:
            state.revert_to(snap)
            del state.logs[logs_mark:]
            receipt = self.accelerator.execute_plain(
                tx, block.header, state,
                fixed_cost=costmodel.FALLBACK_FIXED)
            receipt.outcome = OUTCOME_FAULTED
            receipt.perfect_context_ids = ()
        return receipt

    def _execute_one(self, tx: Transaction, block: Block,
                     state: StateDB):
        """The node's per-transaction execution strategy (the executor
        calls this for optimistic forks and serial runs alike)."""
        ap = self.spec_plane.ap_for(tx.hash)
        if ap is not None and ap.root is not None and ap.ready_at <= \
                self._block_now:
            return self._execute_accelerated(tx, block, state, ap)
        return self.accelerator.execute(tx, block.header, state, None)

    def process_block(self, block: Block, now: float = 0.0) -> BlockReport:
        """Execute a freshly decided block through the accelerator.

        Transactions run through the conflict-aware parallel executor
        (``config.sched.lanes`` virtual lanes); committed state,
        receipts and all Table 2/3 numbers are byte-identical to serial
        execution at every lane count — parallelism surfaces only in
        the ``sched.*`` metrics attached to the report.
        """
        self.predictor.observe_block(block)
        self.head_number = block.number
        self._block_now = now
        state = StateDB(self.world, node_cache=self.node_cache)
        records: List[TxRecord] = []
        outcomes = self.executor.execute_block(
            block, state, list(block.transactions),
            lambda tx, exec_state: self._execute_one(
                tx, block, exec_state))
        # Net per-tx state deltas, reconstructed from the master
        # journal while it still exists (commit clears it).
        deltas = (state.witness_deltas(
            [outcome.journal_span for outcome in outcomes])
            if self.config.enable_witness else None)
        for index, outcome in enumerate(outcomes):
            tx = outcome.tx
            receipt = outcome.receipt
            heard_time = self.heard.get(tx.hash)
            heard = heard_time is not None
            ap = self.spec_plane.ap_for(tx.hash)
            ap_ready = (ap is not None and ap.root is not None
                        and ap.ready_at <= now)
            # Spans are emitted in commit (block) order with the
            # canonical (serial-equivalent) costs, so traces look the
            # same at every lane count apart from the lane annotations.
            with self.tracer.span("execute", tx=f"{tx.hash:#x}",
                                  block=block.number,
                                  ap_ready=ap_ready) as span:
                span.add_cost(receipt.tally.total)
                span.set(outcome=receipt.outcome,
                         lane=outcome.lane_id,
                         aborted=outcome.aborted)
            cost = receipt.tally.total
            if not heard:
                # Forerunner's bookkeeping slows unheard transactions
                # slightly (paper: 0.81x on unheard).
                cost = int(cost * costmodel.UNHEARD_OVERHEAD_FACTOR)
            record = TxRecord(
                tx_hash=tx.hash,
                block_number=block.number,
                gas_used=receipt.result.gas_used,
                success=receipt.result.success,
                cost=cost,
                cpu_units=receipt.tally.cpu_units,
                io_units=receipt.tally.io_units,
                heard=heard,
                heard_delay=(now - heard_time) if heard else 0.0,
                outcome=receipt.outcome,
                ap_ready=ap_ready,
                perfect=bool(receipt.perfect_context_ids),
                first_context_perfect=(
                    self.first_context.get(tx.hash) in
                    receipt.perfect_context_ids),
                speculated_contexts=self._total_spec.get(tx.hash, 0),
                tier=receipt.tier,
            )
            if receipt.ap_stats is not None:
                record.shortcut_hits = receipt.ap_stats.shortcut_hits
                record.executed_nodes = receipt.ap_stats.executed_nodes
                record.skipped_nodes = receipt.ap_stats.skipped_nodes
            records.append(record)
            if deltas is not None:
                logs_start, logs_end = outcome.logs_span
                self.witnesses.append(build_witness(
                    tx_hash=tx.hash, block_number=block.number,
                    receipt=receipt, span_delta=deltas[index],
                    logs=state.logs[logs_start:logs_end],
                    context_ids=(ap_context_ids(ap)
                                 if receipt.used_ap else ())))
            if heard:
                self.c_heard.inc()
            if ap_ready:
                self.c_satisfied.inc()
            self.executed.add(tx.hash)
            if self.pool.pop(tx.hash, None) is not None:
                self._pool_version += 1
            # Prefix eviction is skipped: invalidate_prefixes below
            # clears the whole cache in O(1) once the head advances.
            self.speculator.drop(tx.hash, evict_prefixes=False)
        self.c_blocks.inc()
        self.c_txs.inc(len(records))
        self.c_cost.inc(sum(r.cost for r in records))
        state.commit()
        # The canonical head advanced: every cached predecessor prefix
        # was built on the previous head's state and is now stale.
        # (Commit also bumped world.version, so stale entries could
        # never be *hit* — this eagerly frees them.)
        self.speculator.invalidate_prefixes("new-head")
        root = self.world.root()
        if block.state_root is not None and block.state_root != root:
            raise ChainError(
                f"state root mismatch at block {block.number}: "
                f"{root:#x} != {block.state_root:#x}")
        report = BlockReport(block.number, root, records,
                             sched=self.executor.schedules[-1].as_dict()
                             if self.executor.schedules else None)
        self.reports.append(report)
        return report

    # -- scheduler reporting ---------------------------------------------------

    def sched_report(self) -> dict:
        """Canonical scheduler report: parallel-executor aggregates,
        admission/backpressure counters, and worker-lane state."""
        return {
            "executor": self.executor.report(),
            "admission": self.admission.snapshot(),
            "workers": {
                "lanes": len(self._worker_lanes),
                "clocks": [round(clock, 6)
                           for clock in self._worker_lanes.clocks],
                "jobs": [lane.jobs
                         for lane in self._worker_lanes.lanes],
            },
            "blocks": [schedule.as_dict()
                       for schedule in self.executor.schedules],
        }
