"""Transaction execution accelerator: the on-critical-path component.

Runs each transaction through its accelerated program when one exists;
falls back to full EVM execution on constraint violation or when no AP
is available.  The transaction *envelope* (nonce check, gas purchase,
value transfer, refund, coinbase fee) is executed natively, mirroring
:meth:`repro.evm.interpreter.EVM.execute_transaction` step for step, so
the resulting state transition is bit-identical to a plain execution —
which the Merkle-root checks in the test suite and benches verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core import costmodel
from repro.core.ap import AcceleratedProgram
from repro.core.ap_exec import APExecStats, execute_ap
from repro.core.costmodel import CostTally
from repro.errors import ConstraintViolation, InsufficientBalance
from repro.evm.interpreter import EVM, ExecutionResult
from repro.state.statedb import StateDB
from repro.witness.recorder import ReadSetRecorder

#: Outcome labels (Table 3's prediction-outcome breakdown).
OUTCOME_NO_AP = "no_ap"          # heard/unheard but nothing speculated
OUTCOME_VIOLATED = "violated"    # AP existed, no constraint set matched
OUTCOME_SATISFIED = "satisfied"  # fast path executed
#: The accelerated attempt died to a contained fault (chaos layer or a
#: real bug); the node reverted and re-ran the plain path.  Counted in
#: Table 3's unsatisfied bucket like any other non-satisfied outcome.
OUTCOME_FAULTED = "faulted"


@dataclass
class AcceleratedReceipt:
    """Execution result plus acceleration telemetry for one transaction."""

    result: ExecutionResult
    outcome: str
    tally: CostTally
    ap_stats: Optional[APExecStats] = None
    #: Ids of speculated contexts whose full read set matched reality
    #: (non-empty => the traditional "perfect prediction" would have hit).
    perfect_context_ids: Tuple[int, ...] = ()
    used_ap: bool = False
    #: Which execution tier produced the result: "plain" (full EVM),
    #: "walk" (interpreted AP), or "jit" (specialized closure).
    tier: str = "plain"
    #: Context values the execution observed, in read-set convention
    #: ((kind, key) -> value).  The AP tiers collect these anyway; the
    #: plain path fills them only when witness recording is on.
    observed_reads: Optional[Dict[tuple, int]] = None


def context_matches(read_set: Dict[tuple, int], state: StateDB,
                    header: BlockHeader,
                    blockhash_fn: Callable[[int], int]) -> bool:
    """Is the actual context identical to a speculated one (on its
    read set)?  This is the traditional speculative-execution test."""
    for (kind, key), expected in read_set.items():
        if kind == "storage":
            actual = state.get_storage(key[0], key[1])
        elif kind == "balance":
            actual = state.get_balance(key[0])
        elif kind == "header":
            actual = getattr(header, key[0])
        elif kind == "blockhash":
            actual = blockhash_fn(key[0])
        elif kind == "extcodesize":
            actual = len(state.get_code(key[0]))
        else:
            return False
        if actual != expected:
            return False
    return True


class TransactionAccelerator:
    """Executes transactions, preferring accelerated programs."""

    def __init__(self, blockhash_fn: Optional[Callable[[int], int]] = None,
                 jit=None, record_witnesses: bool = False) -> None:
        self.blockhash_fn = blockhash_fn or (lambda n: 0)
        #: Optional :class:`repro.evm.jit.tier.JitTier`: AP execution
        #: routes through the tier (specialized closure when a valid
        #: artifact exists, the interpreted walker otherwise).
        self.jit = jit
        #: When on, plain executions trace their context read set (via
        #: :class:`repro.witness.recorder.ReadSetRecorder`) so every
        #: receipt carries witness constraints.  Off by default: the
        #: AP tiers observe their reads for free, but the plain path
        #: pays one dict probe per context read.
        self.record_witnesses = record_witnesses

    # -- plain path ---------------------------------------------------------

    def execute_plain(self, tx: Transaction, header: BlockHeader,
                      state: StateDB,
                      fixed_cost: int = costmodel.TX_FIXED
                      ) -> AcceleratedReceipt:
        """Full EVM execution with cost accounting."""
        io_before = state.disk.stats.cost_units
        recorder = ReadSetRecorder() if self.record_witnesses else None
        evm = EVM(state, header, tx, tracer=recorder,
                  blockhash_fn=self.blockhash_fn)
        result = evm.execute_transaction()
        tally = costmodel.evm_execution_cost(
            evm.instruction_count,
            state.disk.stats.cost_units - io_before,
            fixed=fixed_cost,
            write_ops=evm.write_op_count)
        return AcceleratedReceipt(
            result=result, outcome=OUTCOME_NO_AP, tally=tally,
            observed_reads=recorder.reads if recorder else None)

    # -- accelerated path ------------------------------------------------------

    # pylint: disable=too-many-locals
    def execute(self, tx: Transaction, header: BlockHeader, state: StateDB,
                ap: Optional[AcceleratedProgram]) -> AcceleratedReceipt:
        """Execute ``tx``: AP fast path if possible, else fallback."""
        if ap is None or ap.root is None:
            return self.execute_plain(tx, header, state)

        tally = CostTally(fixed_units=costmodel.AP_FIXED)
        io_before = state.disk.stats.cost_units
        base_snap = state.snapshot()
        logs_mark = len(state.logs)
        try:
            receipt = self._run_envelope_and_ap(
                tx, header, state, ap, tally, logs_mark)
        except ConstraintViolation:
            state.revert_to(base_snap)
            del state.logs[logs_mark:]
            receipt = self.execute_plain(
                tx, header, state, fixed_cost=costmodel.FALLBACK_FIXED)
            receipt.outcome = OUTCOME_VIOLATED
            # The aborted constraint check's work counts too.
            receipt.tally.cpu_units += tally.cpu_units
            receipt.tally.fixed_units += tally.fixed_units
            # A perfectly-matching context would have satisfied its own
            # guards, so a violation is never a perfect prediction.
            receipt.perfect_context_ids = ()
            return receipt
        tally.io_units += state.disk.stats.cost_units - io_before
        receipt.tally = tally
        return receipt

    def _run_envelope_and_ap(self, tx: Transaction, header: BlockHeader,
                             state: StateDB, ap: AcceleratedProgram,
                             tally: CostTally,
                             logs_mark: int) -> AcceleratedReceipt:
        """Mirror of EVM.execute_transaction with the call replaced by
        AP execution.  Raises ConstraintViolation to trigger fallback."""
        intrinsic = tx.intrinsic_gas()
        if tx.gas_limit < intrinsic:
            return AcceleratedReceipt(
                result=ExecutionResult(False, 0, error="intrinsic gas too low"),
                outcome=OUTCOME_SATISFIED, tally=tally, used_ap=True,
                tier="walk", observed_reads={})
        if state.get_nonce(tx.sender) != tx.nonce:
            return AcceleratedReceipt(
                result=ExecutionResult(False, 0, error="bad nonce"),
                outcome=OUTCOME_SATISFIED, tally=tally, used_ap=True,
                tier="walk", observed_reads={})
        try:
            state.sub_balance(tx.sender, tx.gas_limit * tx.gas_price)
        except InsufficientBalance:
            return AcceleratedReceipt(
                result=ExecutionResult(False, 0, error="cannot afford gas"),
                outcome=OUTCOME_SATISFIED, tally=tally, used_ap=True,
                tier="walk", observed_reads={})
        state.increment_nonce(tx.sender)

        call_snap = state.snapshot()
        if tx.value:
            try:
                state.sub_balance(tx.sender, tx.value)
                state.add_balance(tx.to, tx.value)
            except InsufficientBalance:
                # Mirror EVM._call: the top-level call fails but the
                # intrinsic gas stays consumed.
                state.revert_to(call_snap)
                gas_used = intrinsic
                state.add_balance(
                    tx.sender, (tx.gas_limit - gas_used) * tx.gas_price)
                state.add_balance(header.coinbase, gas_used * tx.gas_price)
                return AcceleratedReceipt(
                    result=ExecutionResult(False, gas_used, b""),
                    outcome=OUTCOME_SATISFIED, tally=tally, used_ap=True,
                tier="walk", observed_reads={})

        if self.jit is not None:
            outcome = self.jit.execute(ap, state, header, tx, tally=tally,
                                       blockhash_fn=self.blockhash_fn)
            tier = self.jit.last_used
        else:
            outcome = execute_ap(ap, state, header, tx, tally=tally,
                                 blockhash_fn=self.blockhash_fn)
            tier = "walk"
        if not outcome.success:
            state.revert_to(call_snap)
        gas_used = outcome.gas_used
        gas_left = tx.gas_limit - gas_used
        state.add_balance(tx.sender, gas_left * tx.gas_price)
        state.add_balance(header.coinbase, gas_used * tx.gas_price)
        logs = [(e.address, e.topics, e.data)
                for e in state.logs[logs_mark:]]
        result = ExecutionResult(outcome.success, gas_used,
                                 outcome.return_data, logs)
        return AcceleratedReceipt(
            result=result, outcome=OUTCOME_SATISFIED, tally=tally,
            ap_stats=outcome.stats, used_ap=True, tier=tier,
            observed_reads=outcome.observed_reads,
            perfect_context_ids=self._classify_from_observation(
                ap, outcome.observed_reads, header))

    def _classify_from_observation(
            self, ap: AcceleratedProgram,
            observed_reads: Dict[tuple, int],
            header: BlockHeader) -> Tuple[int, ...]:
        """Which speculated contexts matched reality perfectly.

        Uses the values the AP execution itself observed — no extra
        state reads, no cache-warming side effects.  A path is a
        perfect prediction when every entry of its speculated read set
        equals the observed value (header fields are checked against
        the actual header even if the AP never read them via a node,
        since promotion may have folded duplicate reads).
        """
        perfect = []
        for path in ap.paths:
            matched = True
            for (kind, key), expected in path.read_set.items():
                if kind == "header":
                    actual = getattr(header, key[0])
                else:
                    actual = observed_reads.get((kind, key))
                if actual != expected:
                    matched = False
                    break
            if matched:
                perfect.append(path.context_id)
        return tuple(dict.fromkeys(perfect))
