"""S-EVM optimization passes (paper §4.3 and Figure 6).

Because the CD-Equiv constraints pin control flow and data dependencies,
these classic optimizations become trivial one-pass transformations:

* **constant folding** — recursively removes instructions producing
  constant results (transaction fields are already constants, so most
  address arithmetic and ABI decoding folds away);
* **common-subexpression elimination** — structural value numbering;
* **context-access promotion** — keeps only the first read of each
  context variable and forwards stored values to later loads;
  promotion across *variable* storage slots inserts NEQ data guards
  asserting the non-aliasing observed during speculation (the paper's
  data constraints that "make the dependencies fixed");
* **dead-code elimination** — drops instructions that affect neither
  guards, writes, nor the return value;
* **constraint/fast-path partition** — instructions needed by guards
  form the constraint section; everything else (including all writes)
  is the fast path, giving rollback-free execution.

All passes run in a fixed order and record their effect in
:class:`repro.core.translate.SynthStats` for Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.sevm import GuardMode, Reg, SInstr, SKind, is_reg
from repro.core.translate import SynthStats, TranslationResult
from repro.evm.interpreter import COMPUTE_SEMANTICS
from repro.evm.opcodes import NAME_TO_OP
from repro.utils.hashing import keccak_int
from repro.utils.words import int_to_bytes32

#: op name -> python semantics for the pure register ops.
_NAME_SEMANTICS = {
    name: COMPUTE_SEMANTICS[code]
    for name, code in NAME_TO_OP.items()
    if code in COMPUTE_SEMANTICS
}


def evaluate_compute(instr: SInstr, args: Tuple[int, ...]) -> int:
    """Concretely evaluate a COMPUTE instruction on constant args."""
    if instr.op == "SHA3":
        data = b"".join(int_to_bytes32(a) for a in args)
        return keccak_int(data[:instr.meta["size"]])
    if instr.op == "MCONCAT":
        return evaluate_mconcat(instr.meta["layout"], args,
                                instr.meta.get("size", 32))
    fn = _NAME_SEMANTICS[instr.op]
    return fn(*args)


def evaluate_mconcat(layout, args: Tuple[int, ...], size: int) -> int:
    """Assemble a word from register slices / constant bytes / zeros."""
    buf = bytearray(32)
    for entry in layout:
        kind = entry[0]
        if kind == "reg":
            _, rel_off, arg_index, src_start, length = entry
            word = int_to_bytes32(args[arg_index])
            buf[rel_off:rel_off + length] = word[src_start:src_start + length]
        elif kind == "bytes":
            _, rel_off, payload = entry
            buf[rel_off:rel_off + len(payload)] = payload
        # "zero": already zero.
    return int.from_bytes(bytes(buf[:size]) + bytes(32 - size), "big") \
        if size < 32 else int.from_bytes(bytes(buf), "big")


class _Renamer:
    """Tracks register substitutions (to constants or earlier regs)."""

    def __init__(self) -> None:
        self.map: Dict[Reg, object] = {}

    def resolve(self, operand):
        while is_reg(operand) and operand in self.map:
            operand = self.map[operand]
        return operand

    def resolve_args(self, args: Tuple) -> Tuple:
        return tuple(self.resolve(a) for a in args)


def _operand_key(operand) -> tuple:
    """Structural identity of an operand for value numbering."""
    if is_reg(operand):
        return ("r", int(operand))
    return ("c", operand)


def _instr_value_key(instr: SInstr, args: Tuple) -> Optional[tuple]:
    """Value-numbering key for pure computations (None if impure)."""
    if instr.kind is not SKind.COMPUTE:
        return None
    base = (instr.op,) + tuple(_operand_key(a) for a in args)
    if instr.op == "SHA3":
        return base + (instr.meta["size"],)
    if instr.op == "MCONCAT":
        layout_key = tuple(
            (e[0], e[1], e[2]) if e[0] != "bytes" else (e[0], e[1], bytes(e[2]))
            for e in instr.meta["layout"])
        return base + (layout_key,)
    return base


def fold_and_cse(instrs: List[SInstr], stats: SynthStats,
                 renamer: Optional[_Renamer] = None,
                 fold: bool = True, cse: bool = True) -> List[SInstr]:
    """One forward pass of constant folding + CSE (+ trivial guard
    elimination for guards whose operand folded to a constant)."""
    if renamer is None:
        renamer = _Renamer()
    seen: Dict[tuple, Reg] = {}
    out: List[SInstr] = []
    for instr in instrs:
        args = renamer.resolve_args(instr.args)
        if instr.kind is SKind.COMPUTE:
            if fold and all(not is_reg(a) for a in args):
                renamer.map[instr.dest] = evaluate_compute(instr, args)
                stats.eliminated_constant += 1
                continue
            key = _instr_value_key(instr, args) if cse else None
            previous = seen.get(key) if cse else None
            if previous is not None:
                renamer.map[instr.dest] = previous
                stats.eliminated_duplicate += 1
                continue
            if cse:
                seen[key] = instr.dest
            instr.args = args
            out.append(instr)
            continue
        if instr.kind is SKind.GUARD:
            if all(not is_reg(a) for a in args):
                # Statically satisfied (value observed during
                # speculation IS the expected value); drop it.
                _assert_static_guard(instr, args)
                stats.eliminated_constant += 1
                if instr.is_control:
                    stats.inserted_guards -= 1
                else:
                    stats.inserted_data_constraints -= 1
                continue
            instr.args = args
            out.append(instr)
            continue
        instr.args = args
        out.append(instr)
    return out


def _assert_static_guard(instr: SInstr, args: Tuple) -> None:
    """A guard whose operands folded to constants must hold trivially
    (the constants come from the very execution that generated it)."""
    if instr.guard_mode is GuardMode.EQ:
        ok = args[0] == instr.expected
    elif instr.guard_mode is GuardMode.TRUTH:
        ok = bool(args[0]) == instr.expected
    else:  # NEQ
        ok = args[0] != args[1]
    if not ok:  # pragma: no cover - internal invariant
        raise AssertionError(f"statically violated guard: {instr}")


# -- context-access promotion ---------------------------------------------------


def _slot_key(operand) -> tuple:
    return _operand_key(operand)


def promote_context_accesses(
    instrs: List[SInstr],
    concrete: Dict[Reg, int],
    stats: SynthStats,
    renamer: Optional[_Renamer] = None,
) -> List[SInstr]:
    """First-read reuse, store-to-load forwarding, and read dedup.

    Keeps only the first read of each context variable and forwards
    SSTOREd values to later SLOADs of the same (symbolic) slot.  When a
    binding is reused across intervening storage traffic on *variable*
    slots, a NEQ data guard pins the non-aliasing seen in speculation.
    """
    if renamer is None:
        renamer = _Renamer()
    out: List[SInstr] = []

    def concrete_of(operand) -> int:
        if is_reg(operand):
            return concrete[operand]
        return operand

    # Per contract address: symbolic-slot -> (operand, intervening ops).
    # intervening: list of slot operands written since the binding.
    storage_bindings: Dict[int, Dict[tuple, dict]] = {}
    # Simple reads (header fields, balances, blockhash): key -> reg.
    simple_bindings: Dict[tuple, Reg] = {}

    def guard_non_alias(binding: dict, slot_op) -> bool:
        """Emit NEQ guards pinning distinctness vs intervening writes.

        Returns False (binding unusable) if an intervening write aliased
        this slot concretely during speculation.
        """
        for other_op in binding["intervening"]:
            if not is_reg(slot_op) and not is_reg(other_op):
                continue  # distinct constants: statically non-aliasing
            if concrete_of(other_op) == concrete_of(slot_op):
                return False
            out.append(SInstr(
                kind=SKind.GUARD, op="GUARD", args=(slot_op, other_op),
                guard_mode=GuardMode.NEQ, expected=True, is_control=False))
            stats.inserted_data_constraints += 1
        binding["intervening"] = []
        return True

    for instr in instrs:
        args = renamer.resolve_args(instr.args)
        instr.args = args
        if instr.kind is SKind.READ:
            if instr.op == "SLOAD":
                address = instr.key[0]
                bindings = storage_bindings.setdefault(address, {})
                key = _slot_key(args[0])
                binding = bindings.get(key)
                if binding is not None and guard_non_alias(binding, args[0]):
                    renamer.map[instr.dest] = binding["operand"]
                    stats.eliminated_promoted_reads += 1
                    continue
                bindings[key] = {"operand": instr.dest, "slot_op": args[0],
                                 "intervening": []}
                out.append(instr)
                continue
            # Header fields / balances / blockhash / extcodesize: no
            # writes can intervene inside one transaction's AP.
            key = (instr.op, instr.key,
                   tuple(_operand_key(a) for a in args))
            previous = simple_bindings.get(key)
            if previous is not None:
                renamer.map[instr.dest] = previous
                stats.eliminated_promoted_reads += 1
                continue
            simple_bindings[key] = instr.dest
            out.append(instr)
            continue
        if instr.kind is SKind.WRITE and instr.op == "SSTORE":
            address = instr.key[0]
            bindings = storage_bindings.setdefault(address, {})
            key = _slot_key(args[0])
            written_value = concrete_of(args[1])
            slot_value = concrete_of(args[0])
            # Invalidate any binding that concretely aliased this slot
            # during speculation (its cached value is now stale).
            for other_key in list(bindings):
                if other_key == key:
                    continue
                other = bindings[other_key]
                if concrete_of(other["slot_op"]) == slot_value:
                    del bindings[other_key]
                else:
                    other["intervening"].append(args[0])
            bindings[key] = {"operand": args[1], "slot_op": args[0],
                             "intervening": []}
            del written_value
            out.append(instr)
            continue
        out.append(instr)
    return out


def eliminate_dead_code(
    instrs: List[SInstr],
    root_regs: Set[Reg],
    stats: Optional[SynthStats] = None,
) -> List[SInstr]:
    """Backward liveness: keep guards, writes, and whatever feeds them
    (plus ``root_regs``, e.g. registers in the return-data layout)."""
    live: Set[Reg] = set(root_regs)
    kept_reversed: List[SInstr] = []
    for instr in reversed(instrs):
        if instr.kind in (SKind.GUARD, SKind.WRITE):
            for arg in instr.args:
                if is_reg(arg):
                    live.add(arg)
            kept_reversed.append(instr)
            continue
        if instr.dest is not None and instr.dest in live:
            for arg in instr.args:
                if is_reg(arg):
                    live.add(arg)
            kept_reversed.append(instr)
            continue
        if stats is not None:
            stats.eliminated_dead += 1
    kept_reversed.reverse()
    return kept_reversed


def partition_constraint_fastpath(
    instrs: List[SInstr],
) -> Tuple[List[SInstr], List[SInstr]]:
    """Split into (constraint section, fast path).

    The constraint section is the guard-feeding closure — the code that
    must run to decide whether any constraint set is satisfied.  The
    fast path holds everything else, including all writes, which makes
    AP execution rollback-free (paper §4.3).
    """
    needed: Set[Reg] = set()
    in_constraint: List[bool] = [False] * len(instrs)
    for index in range(len(instrs) - 1, -1, -1):
        instr = instrs[index]
        if instr.kind is SKind.GUARD:
            in_constraint[index] = True
            for arg in instr.args:
                if is_reg(arg):
                    needed.add(arg)
        elif instr.dest is not None and instr.dest in needed:
            in_constraint[index] = True
            for arg in instr.args:
                if is_reg(arg):
                    needed.add(arg)
    constraint = [i for flag, i in zip(in_constraint, instrs) if flag]
    fastpath = [i for flag, i in zip(in_constraint, instrs) if not flag]
    return constraint, fastpath


@dataclass
class PassConfig:
    """Which optimization passes run (ablation support)."""

    fold_constants: bool = True
    cse: bool = True
    promote: bool = True
    dce: bool = True


def _rename_pieces(pieces, renamer: _Renamer):
    """Apply accumulated register renames to a return-data piece list.

    A piece's register may have folded to a constant, in which case the
    piece becomes constant bytes.
    """
    renamed = []
    for rel_off, piece in pieces:
        if piece[0] != "reg":
            renamed.append((rel_off, piece))
            continue
        _, reg, src_start, length = piece
        resolved = renamer.resolve(reg)
        if is_reg(resolved):
            renamed.append((rel_off, ("reg", resolved, src_start, length)))
        else:
            word = int_to_bytes32(resolved)
            renamed.append(
                (rel_off, ("bytes", word[src_start:src_start + length])))
    return renamed


def optimize_path(result: TranslationResult,
                  config: Optional[PassConfig] = None) -> List[SInstr]:
    """Run the full pass pipeline over one translated path, in place.

    Returns the optimized instruction list; ``result.stats`` is updated.
    DCE here is per-path (for Figure 15 accounting); the merged-AP tree
    runs its own cross-branch liveness pass on the pre-DCE list, which
    is preserved in ``result.pre_dce_instrs`` because the pre-DCE form
    is prefix-deterministic (two paths of the same transaction produce
    identical instruction prefixes up to their first diverging guard,
    which is what makes AP merging possible — paper §4.3, "AP merging").
    """
    if config is None:
        config = PassConfig()
    stats = result.stats
    renamer = _Renamer()
    instrs = fold_and_cse(result.instrs, stats, renamer,
                          fold=config.fold_constants, cse=config.cse)
    if config.promote:
        instrs = promote_context_accesses(
            instrs, result.concrete, stats, renamer)
        instrs = fold_and_cse(instrs, stats, renamer,
                              fold=config.fold_constants, cse=config.cse)
    result.return_pieces = _rename_pieces(result.return_pieces, renamer)
    result.pre_dce_instrs = list(instrs)
    root_regs = {
        piece[1] for _, piece in result.return_pieces if piece[0] == "reg"
    }
    if config.dce:
        instrs = eliminate_dead_code(instrs, root_regs, stats)
    constraint, fastpath = partition_constraint_fastpath(instrs)
    stats.final_len = len(instrs)
    stats.constraint_section_len = len(constraint)
    stats.fast_path_len = len(fastpath)
    result.instrs = instrs
    return instrs
