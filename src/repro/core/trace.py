"""Instrumented pre-execution: collecting traces and read/write sets.

This is the preparation step of AP synthesis (paper §4.3): run the
transaction on the instrumented EVM in a (predicted or actual) context,
recording the full instruction trace with intermediate results, the read
set (context variables read and their values), and the write set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.evm.interpreter import EVM, ExecutionResult
from repro.evm.tracing import StepRecord, Tracer
from repro.state.statedb import StateDB

#: A read/write-set key: (kind, key-tuple), e.g. ("storage", (addr, slot)).
ContextKey = Tuple[str, tuple]


@dataclass
class FrameEvent:
    """Start/end marker of one call frame inside the flat trace."""

    frame_id: int
    parent_id: Optional[int]
    code_address: int
    depth: int
    start_index: int
    end_index: int = -1
    success: bool = True
    return_data: bytes = b""


class TxTracer(Tracer):
    """Collects the instruction trace and read/write sets of one execution."""

    def __init__(self) -> None:
        self.steps: List[StepRecord] = []
        #: First-read value per context key (register promotion keeps the
        #: first read; later reads of the same variable are redundant).
        self.read_set: Dict[ContextKey, int] = {}
        #: Last-written value per key.
        self.write_set: Dict[ContextKey, object] = {}
        #: All reads in order (prefetcher input).
        self.reads_in_order: List[Tuple[str, tuple, int]] = []
        self.frames: Dict[int, FrameEvent] = {}

    def on_step(self, record: StepRecord) -> None:
        self.steps.append(record)

    def on_call_enter(self, frame_id: int, parent_id: Optional[int],
                      code_address: int, depth: int) -> None:
        self.frames[frame_id] = FrameEvent(
            frame_id=frame_id, parent_id=parent_id,
            code_address=code_address, depth=depth,
            start_index=len(self.steps))

    def on_call_exit(self, frame_id: int, success: bool,
                     return_data: bytes) -> None:
        event = self.frames.get(frame_id)
        if event is not None:
            event.end_index = len(self.steps)
            event.success = success
            event.return_data = return_data

    def on_context_read(self, kind: str, key: tuple, value: int) -> None:
        context_key = (kind, key)
        self.reads_in_order.append((kind, key, value))
        if context_key not in self.read_set:
            self.read_set[context_key] = value

    def on_state_write(self, kind: str, key: tuple, value) -> None:
        self.write_set[(kind, key)] = value


@dataclass
class TraceResult:
    """Everything AP synthesis needs from one pre-execution."""

    tx: Transaction
    header: BlockHeader
    result: ExecutionResult
    steps: List[StepRecord] = field(default_factory=list)
    read_set: Dict[ContextKey, int] = field(default_factory=dict)
    write_set: Dict[ContextKey, object] = field(default_factory=dict)
    reads_in_order: List[Tuple[str, tuple, int]] = field(default_factory=list)
    frames: Dict[int, FrameEvent] = field(default_factory=dict)
    #: Identifier of the speculated future context (set by the speculator).
    context_id: Optional[int] = None

    @property
    def trace_length(self) -> int:
        """Number of EVM instructions executed."""
        return len(self.steps)


def trace_fingerprint(trace: "TraceResult") -> str:
    """Content hash of a trace: instruction stream, read/write sets,
    frame shape, and the execution outcome.

    Two pre-executions with equal fingerprints would synthesize the
    same AP path, so the speculator can reuse the already-merged one
    (synthesis dedup).  The fingerprint deliberately excludes the
    context id — that is exactly the dimension dedup collapses.
    """
    digest = hashlib.sha256()
    update = digest.update
    result = trace.result
    update(repr((result.success, result.gas_used, result.return_data,
                 result.error, result.logs)).encode())
    for step in trace.steps:
        update(repr((step.op, step.pc, step.name, step.frame_id,
                     step.depth, step.code_address, step.inputs,
                     step.output, step.gas_cost)).encode())
        if step.extra:
            update(repr(sorted(step.extra.items())).encode())
    update(repr(sorted(trace.read_set.items())).encode())
    update(repr(sorted(trace.write_set.items())).encode())
    for frame_id in sorted(trace.frames):
        event = trace.frames[frame_id]
        update(repr((frame_id, event.parent_id, event.code_address,
                     event.depth, event.start_index, event.end_index,
                     event.success, event.return_data)).encode())
    return digest.hexdigest()


def trace_transaction(
    state: StateDB,
    header: BlockHeader,
    tx: Transaction,
    blockhash_fn: Optional[Callable[[int], int]] = None,
) -> TraceResult:
    """Execute ``tx`` with instrumentation and return the trace.

    The caller owns ``state`` (typically a speculative overlay); this
    function mutates it exactly as a normal execution would.
    """
    tracer = TxTracer()
    evm = EVM(state, header, tx, tracer=tracer, blockhash_fn=blockhash_fn)
    result = evm.execute_transaction()
    return TraceResult(
        tx=tx, header=header, result=result,
        steps=tracer.steps,
        read_set=tracer.read_set,
        write_set=tracer.write_set,
        reads_in_order=tracer.reads_in_order,
        frames=tracer.frames,
    )
