"""Multi-future predictor (paper §4.4).

Two sub-components:

* the **next-block predictor** simulates how miners pack blocks: it
  ranks the pending pool by gas price (random tie-breaking — official
  geth orders same-price transactions randomly), honours miner
  self-priority, caps how many transactions are speculated per cycle
  (recall over precision, bounded by a capping mechanism), and predicts
  header fields (timestamp from observed inter-block statistics,
  coinbase from the observed miner distribution);
* the **context constructor** groups inter-dependent pending
  transactions (heuristically: same receiving contract, or same sender)
  and enumerates orderings of each transaction's predecessors within
  its group, sampling when the ordering space is too large.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.constants import DEFAULT_BLOCK_INTERVAL
from repro.core.speculator import FutureContext
from repro.obs.registry import MetricsRegistry, get_registry


@dataclass
class HeaderStats:
    """Online statistics about observed blocks (for header prediction)."""

    last_number: int = 0
    last_timestamp: int = 0
    last_hash: int = 0
    intervals: List[float] = field(default_factory=list)
    miner_counts: Dict[int, int] = field(default_factory=dict)

    def observe(self, block: Block) -> None:
        if self.last_timestamp and block.header.timestamp > self.last_timestamp:
            self.intervals.append(
                block.header.timestamp - self.last_timestamp)
            if len(self.intervals) > 200:
                del self.intervals[0]
        self.last_number = block.header.number
        self.last_timestamp = block.header.timestamp
        self.last_hash = block.hash
        coinbase = block.header.coinbase
        self.miner_counts[coinbase] = self.miner_counts.get(coinbase, 0) + 1

    def mean_interval(self) -> float:
        if not self.intervals:
            return DEFAULT_BLOCK_INTERVAL
        return sum(self.intervals) / len(self.intervals)

    def top_miners(self, count: int) -> List[int]:
        ranked = sorted(self.miner_counts.items(),
                        key=lambda item: -item[1])
        return [miner for miner, _ in ranked[:count]]


@dataclass
class PredictorConfig:
    """Tunables for the multi-future predictor."""

    #: Maximum pending transactions selected per prediction cycle
    #: (the capping mechanism: recall over precision, but bounded).
    max_candidates: int = 400
    #: How many future contexts to construct per transaction.
    max_contexts_per_tx: int = 4
    #: Longest predecessor prefix applied when enumerating orderings.
    max_predecessors: int = 3
    #: Header variants: how many timestamp guesses to combine.
    timestamp_variants: Tuple[int, ...] = (0, 7)
    #: How many top miners to consider as coinbase candidates.
    coinbase_variants: int = 2
    #: Overselection factor over one block's gas limit (recall-oriented).
    gas_recall_factor: float = 2.0
    #: RNG seed (tie-breaking and ordering shuffles are random, like
    #: geth's same-price packing order — deterministic per seed here).
    seed: int = 20211026


@dataclass
class Prediction:
    """Output of one prediction cycle."""

    #: Transactions predicted to be packed soon, most likely first.
    candidates: List[Transaction]
    #: Future contexts per transaction hash.
    contexts: Dict[int, List[FutureContext]]


class MultiFuturePredictor:
    """Builds (transaction, future contexts) pairs from the pool."""

    def __init__(self, config: Optional[PredictorConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None) -> None:
        self.config = config or PredictorConfig()
        self.stats = HeaderStats()
        self._rng = random.Random(self.config.seed)
        self._next_context_id = 1
        #: Chaos hook (:mod:`repro.faults`); faults raised here are
        #: contained by the node's guard (one skipped cycle).
        self.injector = injector
        obs = (registry or get_registry()).scope("predictor")
        self.c_cycles = obs.counter("cycles")
        self.c_candidates = obs.counter("candidates")
        self.c_contexts = obs.counter("contexts")
        self.c_blocks_observed = obs.counter("blocks_observed")
        self.h_contexts_per_tx = obs.histogram(
            "contexts_per_tx", bounds=(0, 1, 2, 4, 8, 16, 32))

    def observe_block(self, block: Block) -> None:
        """Feed every received block to keep header statistics fresh."""
        self.c_blocks_observed.inc()
        self.stats.observe(block)

    # -- next-block prediction ------------------------------------------------

    def rank_pending(self, pending: Sequence[Transaction],
                     block_gas_limit: int) -> List[Transaction]:
        """Predict which pending transactions get packed next.

        Gas-price priority with random tie-breaking, miner self-origin
        priority, overselected by ``gas_recall_factor`` and capped.
        """
        def sort_key(tx: Transaction):
            self_priority = 1 if tx.origin_miner is not None else 0
            return (-self_priority, -tx.gas_price, self._rng.random())

        ranked = sorted(pending, key=sort_key)
        budget = int(block_gas_limit * self.config.gas_recall_factor)
        selected: List[Transaction] = []
        for tx in ranked:
            if len(selected) >= self.config.max_candidates:
                break
            if budget - tx.gas_limit < 0:
                continue
            budget -= tx.gas_limit
            selected.append(tx)
        return selected

    def predict_headers(self) -> List[BlockHeader]:
        """Enumerate likely next-block headers (timestamp x coinbase)."""
        stats = self.stats
        base_ts = stats.last_timestamp or 0
        interval = max(1, int(round(stats.mean_interval())))
        miners = stats.top_miners(self.config.coinbase_variants) or [0]
        headers = []
        for delta in self.config.timestamp_variants:
            for coinbase in miners:
                headers.append(BlockHeader(
                    number=stats.last_number + 1,
                    timestamp=base_ts + interval + delta,
                    coinbase=coinbase,
                    parent_hash=stats.last_hash,
                ))
        return headers

    # -- context construction -------------------------------------------------------

    def group_dependencies(self, candidates: Sequence[Transaction]
                           ) -> Dict[int, List[Transaction]]:
        """Group candidates that plausibly affect each other's context.

        Heuristic: transactions calling the same contract form a group
        (they may share storage); same-sender transactions are
        nonce-ordered within it.
        """
        groups: Dict[int, List[Transaction]] = {}
        for tx in candidates:
            groups.setdefault(tx.to, []).append(tx)
        return groups

    def contexts_for(self, tx: Transaction, group: Sequence[Transaction],
                     sender_chain: Sequence[Transaction] = ()
                     ) -> List[FutureContext]:
        """Enumerate future contexts for ``tx`` (paper Figure 5).

        Combines header variants with orderings of the transaction's
        potential predecessors from its dependency group, enumerating
        orderings in random order (sampling when too many).  The
        sender's own earlier-nonce pending transactions are *mandatory*
        predecessors in every context — without them the target cannot
        execute at all.
        """
        config = self.config
        mandatory = tuple(sorted(sender_chain, key=lambda t: t.nonce))
        if len(mandatory) > 2 * config.max_predecessors:
            # Too deep a nonce chain to speculate usefully right now.
            return []
        headers = self.predict_headers()
        others = [t for t in group
                  if t.hash != tx.hash and t.sender != tx.sender]
        # Likely predecessors: higher-priority members of the group.
        others.sort(key=lambda t: -t.gas_price)
        pool = others[:config.max_predecessors]

        orderings: List[Tuple[Transaction, ...]] = [()]
        for size in range(1, len(pool) + 1):
            for combo in itertools.permutations(pool, size):
                orderings.append(combo)
        self._rng.shuffle(orderings)
        # The single most likely future goes FIRST: every strictly
        # higher-priced group member executes before the target, in
        # price order (miners' modal behaviour).  Then the empty
        # ordering, then the random exploration of the rest.
        greedy = tuple(t for t in pool if t.gas_price > tx.gas_price)
        preferred = [greedy, ()]
        orderings = preferred + [
            o for o in orderings if o not in preferred]

        contexts: List[FutureContext] = []
        # Interleave variation across BOTH axes: each context takes the
        # next ordering paired with a cycling header variant, so a small
        # context budget still explores ordering *and* header diversity.
        for index in range(min(config.max_contexts_per_tx,
                               len(orderings) * len(headers))):
            ordering = orderings[index % len(orderings)]
            header = headers[(index + index // len(orderings))
                             % len(headers)]
            context = FutureContext(
                context_id=self._next_context_id,
                header=header,
                predecessors=mandatory + ordering,
            )
            self._next_context_id += 1
            contexts.append(context)
        return contexts

    def predict(self, pending: Sequence[Transaction],
                block_gas_limit: int) -> Prediction:
        """One full prediction cycle over the current pending pool."""
        if self.injector is not None:
            self.injector.maybe_raise("predictor.predict")
        candidates = self.rank_pending(pending, block_gas_limit)
        groups = self.group_dependencies(candidates)
        by_sender: Dict[int, List[Transaction]] = {}
        for tx in pending:
            by_sender.setdefault(tx.sender, []).append(tx)
        contexts = {}
        for tx in candidates:
            chain = [t for t in by_sender.get(tx.sender, [])
                     if t.nonce < tx.nonce]
            contexts[tx.hash] = self.contexts_for(
                tx, groups[tx.to], sender_chain=chain)
            self.c_contexts.inc(len(contexts[tx.hash]))
            self.h_contexts_per_tx.observe(len(contexts[tx.hash]))
        self.c_cycles.inc()
        self.c_candidates.inc(len(candidates))
        return Prediction(candidates=candidates, contexts=contexts)
