"""State prefetcher (paper §4.4).

Off the critical path, the prefetcher walks the union of the speculated
read sets and pre-creates warm cache entries, so that critical-path
lookups hit caches instead of walking the trie from disk.  It also pays
the cold-walk cost there and then — the off-path I/O is accounted into
the speculator's overhead, not the critical path.

Instrumented under the ``prefetcher.*`` obs scope; the legacy
``offpath_cost`` / ``prefetched_keys`` attributes remain as read-only
views over the registry counters.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.obs.registry import MetricsRegistry, get_registry
from repro.state.diskio import DiskModel
from repro.state.nodecache import NodeCache
from repro.state.statedb import StateDB
from repro.state.world import WorldState


class Prefetcher:
    """Pre-populates a node cache from speculated read sets."""

    def __init__(self, world: WorldState, node_cache: NodeCache,
                 registry: Optional[MetricsRegistry] = None,
                 injector=None) -> None:
        self.world = world
        self.node_cache = node_cache
        #: Chaos hook (:mod:`repro.faults`); faults raised here are
        #: contained by the node's guard (the keys just stay cold).
        self.injector = injector
        obs = (registry or get_registry()).scope("prefetcher")
        #: Off-critical-path I/O cost paid by prefetching (cost units).
        self.c_offpath_cost = obs.counter("offpath_cost")
        self.c_prefetched_keys = obs.counter("prefetched_keys")
        self.c_calls = obs.counter("calls")

    # -- legacy counter views (read-only ints) ---------------------------

    @property
    def offpath_cost(self) -> int:
        return self.c_offpath_cost.value

    @property
    def prefetched_keys(self) -> int:
        return self.c_prefetched_keys.value

    def prefetch(self, read_keys: Iterable[Tuple[str, tuple]],
                 tx_sender: Optional[int] = None,
                 tx_to: Optional[int] = None,
                 coinbase: Optional[int] = None) -> int:
        """Warm every key in ``read_keys`` plus the envelope accounts.

        Returns the number of newly warmed keys.
        """
        if self.injector is not None:
            self.injector.maybe_raise("prefetcher.prefetch", to=tx_to)
        disk = DiskModel()
        state = StateDB(self.world, disk=disk, node_cache=self.node_cache)
        warmed = 0
        for address in (tx_sender, tx_to, coinbase):
            if address is not None:
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
        for kind, key in read_keys:
            if kind == "storage":
                address, slot = key
                if not self.node_cache.contains(("slot", address, slot)):
                    warmed += 1
                state.warm_slot(address, slot)
            elif kind == "balance":
                (address,) = key
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
            elif kind == "extcodesize":
                (address,) = key
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
            # header / blockhash reads need no state I/O
        self.c_calls.inc()
        self.c_offpath_cost.inc(disk.stats.cost_units)
        self.c_prefetched_keys.inc(warmed)
        return warmed
