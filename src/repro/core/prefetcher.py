"""State prefetcher (paper §4.4).

Off the critical path, the prefetcher walks the union of the speculated
read sets and pre-creates warm cache entries, so that critical-path
lookups hit caches instead of walking the trie from disk.  It also pays
the cold-walk cost there and then — the off-path I/O is accounted into
the speculator's overhead, not the critical path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.state.diskio import DiskModel
from repro.state.nodecache import NodeCache
from repro.state.statedb import StateDB
from repro.state.world import WorldState


class Prefetcher:
    """Pre-populates a node cache from speculated read sets."""

    def __init__(self, world: WorldState, node_cache: NodeCache) -> None:
        self.world = world
        self.node_cache = node_cache
        #: Off-critical-path I/O cost paid by prefetching (cost units).
        self.offpath_cost = 0
        self.prefetched_keys = 0

    def prefetch(self, read_keys: Iterable[Tuple[str, tuple]],
                 tx_sender: Optional[int] = None,
                 tx_to: Optional[int] = None,
                 coinbase: Optional[int] = None) -> int:
        """Warm every key in ``read_keys`` plus the envelope accounts.

        Returns the number of newly warmed keys.
        """
        disk = DiskModel()
        state = StateDB(self.world, disk=disk, node_cache=self.node_cache)
        warmed = 0
        for address in (tx_sender, tx_to, coinbase):
            if address is not None:
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
        for kind, key in read_keys:
            if kind == "storage":
                address, slot = key
                if not self.node_cache.contains(("slot", address, slot)):
                    warmed += 1
                state.warm_slot(address, slot)
            elif kind == "balance":
                (address,) = key
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
            elif kind == "extcodesize":
                (address,) = key
                if not self.node_cache.contains(("acct", address)):
                    warmed += 1
                state.warm_account(address)
            # header / blockhash reads need no state I/O
        self.offpath_cost += disk.stats.cost_units
        self.prefetched_keys += warmed
        return warmed
