"""Trace -> S-EVM translation (paper §4.3, "Program specialization").

The four conversion steps, fused into one pass over the EVM trace:

* **Complex instruction decomposition** — SHA3's memory-read half,
  CALL's calldata/returndata marshalling, and CALLDATACOPY are split
  into their memory and compute/register parts; the memory parts are
  then resolved symbolically (and so vanish).
* **Stack-to-register translation** — a symbolic stack maps every EVM
  stack slot to either a constant or an SSA register, so PUSH/DUP/SWAP/
  POP disappear and data dependencies become explicit operands.
* **Register promotion** — a symbolic byte-interval memory per call
  frame resolves every MLOAD to the operands that produced the bytes
  (register, constant, or an MCONCAT of slices), eliminating all memory
  instructions.  Context reads keep their first read; redundant reads
  are removed by the promotion pass in :mod:`repro.core.optimize`.
* **Control-flow elimination** — JUMP/JUMPI/JUMPDEST vanish; every
  context-dependent control decision becomes a guard instruction
  (control constraints), and variable memory offsets become EQ guards
  (data constraints).  Gas-induced control flow needs no runtime guard
  in this reproduction because the simplified gas schedule makes path
  gas a synthesis-time constant (see DESIGN.md).

The output is a single SSA instruction list for one execution path,
together with concrete register values (feeding constant folding and
memoization) and synthesis statistics (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SpeculationError
from repro.evm import opcodes
from repro.evm.opcodes import Category, Op
from repro.evm.tracing import StepRecord
from repro.core.sevm import (
    COMPUTE_SHA3,
    GuardMode,
    PURE_OP_NAMES,
    Reg,
    SInstr,
    SKind,
    is_reg,
)
from repro.core.trace import TraceResult
from repro.utils.words import int_to_bytes32


@dataclass
class SynthStats:
    """Per-path synthesis accounting (Figure 15 / §5.5).

    All counts are in instructions.  The category mapping follows the
    paper's Figure 15 labels; see DESIGN.md for the exact conventions.
    """

    trace_len: int = 0
    decomposed_added: int = 0
    eliminated_stack: int = 0
    eliminated_control: int = 0
    eliminated_mem: int = 0
    eliminated_state: int = 0
    inserted_guards: int = 0          # control constraints
    inserted_data_constraints: int = 0
    # Filled by the optimizer:
    eliminated_constant: int = 0
    eliminated_duplicate: int = 0
    eliminated_dead: int = 0
    eliminated_promoted_reads: int = 0
    eliminated_dead_writes: int = 0
    final_len: int = 0
    constraint_section_len: int = 0
    fast_path_len: int = 0
    shortcuts_added: int = 0

    def sevm_unoptimized_len(self) -> int:
        """Instruction count right after translation (second column)."""
        return (self.trace_len + self.decomposed_added
                - self.eliminated_stack - self.eliminated_control
                - self.eliminated_mem - self.eliminated_state
                + self.inserted_guards + self.inserted_data_constraints)


# -- symbolic memory pieces ---------------------------------------------------
#
# A "piece" describes where some bytes come from:
#   ("bytes", b"...")                constant bytes
#   ("reg", Reg, src_start, length)  a slice of a register's 32-byte word
#   ("zero", length)                 untouched (zero) memory

def _piece_len(piece) -> int:
    if piece[0] == "bytes":
        return len(piece[1])
    if piece[0] == "reg":
        return piece[3]
    return piece[1]  # zero


def _slice_piece(piece, start: int, length: int):
    """Sub-slice of a piece (start relative to the piece)."""
    if piece[0] == "bytes":
        return ("bytes", piece[1][start:start + length])
    if piece[0] == "reg":
        return ("reg", piece[1], piece[2] + start, length)
    return ("zero", length)


class _SymFrame:
    """Symbolic machine state of one call frame."""

    __slots__ = ("frame_id", "code_address", "stack", "writes",
                 "calldata_pieces", "calldata_size", "depth",
                 "returndata")

    def __init__(self, frame_id: int, code_address: int, depth: int,
                 calldata_pieces, calldata_size: int) -> None:
        self.frame_id = frame_id
        self.code_address = code_address
        self.depth = depth
        self.stack: List[object] = []
        #: Memory writes in program order: (offset, size, payload) where
        #: payload is ("bytes", b), ("word", operand), or
        #: ("pieces", [(rel_off, piece), ...]).
        self.writes: List[Tuple[int, int, tuple]] = []
        #: The frame's calldata as a piece list (absolute rel offsets).
        self.calldata_pieces = calldata_pieces
        self.calldata_size = calldata_size
        #: Return data of the frame's most recent completed sub-call
        #: (piece list + actual size), for RETURNDATACOPY.
        self.returndata: Tuple[list, int] = ([], 0)


@dataclass
class TranslationResult:
    """S-EVM path for one traced execution."""

    instrs: List[SInstr]
    concrete: Dict[Reg, int]
    #: Return-data layout of the top-level call: list of
    #: (rel_off, piece) covering [0, return_size).
    return_pieces: List[Tuple[int, tuple]]
    return_size: int
    success: bool
    gas_used: int
    stats: SynthStats
    read_set: Dict[tuple, int]
    write_set: Dict[tuple, object]
    #: Post-promotion, pre-DCE instruction list (the merge skeleton);
    #: filled in by :func:`repro.core.optimize.optimize_path`.
    pre_dce_instrs: Optional[List[SInstr]] = None


class Translator:
    """One-shot translator for a single :class:`TraceResult`."""

    def __init__(self, trace: TraceResult) -> None:
        self.trace = trace
        self.instrs: List[SInstr] = []
        self.concrete: Dict[Reg, int] = {}
        self.stats = SynthStats(trace_len=len(trace.steps))
        self._next_reg = 0
        self._frames: Dict[int, _SymFrame] = {}
        self._frame_stack: List[_SymFrame] = []
        #: Calldata prepared by a pending CALL for the next entered frame.
        self._pending_calldata: Optional[Tuple[list, int]] = None
        #: Return pieces of the frame that just exited.
        self._last_return: Tuple[list, int] = ([], 0)
        self._top_return: Tuple[list, int] = ([], 0)
        #: frame_id -> ancestor id tuple, for discarding reverted writes.
        self._ancestry: Dict[int, Tuple[int, ...]] = {}

    # -- register / instruction helpers ------------------------------------

    def _new_reg(self, concrete_value: int) -> Reg:
        reg = Reg(self._next_reg)
        self._next_reg += 1
        self.concrete[reg] = concrete_value
        return reg

    def _emit(self, instr: SInstr) -> SInstr:
        self.instrs.append(instr)
        return instr

    def _frame_tag(self) -> Tuple[int, ...]:
        return tuple(f.frame_id for f in self._frame_stack)

    def _guard_eq(self, operand, expected: int, is_control: bool) -> None:
        """Guard a register operand against its speculated value."""
        if not is_reg(operand):
            return
        self._emit(SInstr(
            kind=SKind.GUARD, op="GUARD", args=(operand,),
            guard_mode=GuardMode.EQ, expected=expected,
            is_control=is_control))
        if is_control:
            self.stats.inserted_guards += 1
        else:
            self.stats.inserted_data_constraints += 1

    def _guard_truth(self, operand, taken: bool) -> None:
        if not is_reg(operand):
            return
        self._emit(SInstr(
            kind=SKind.GUARD, op="GUARD", args=(operand,),
            guard_mode=GuardMode.TRUTH, expected=taken, is_control=True))
        self.stats.inserted_guards += 1

    # -- memory resolution ---------------------------------------------------

    def _resolve_pieces(self, writes, offset: int, size: int
                        ) -> List[Tuple[int, tuple]]:
        """Piece list covering [offset, offset+size) of a write list.

        Later writes shadow earlier ones; untouched ranges are zero.
        Returned offsets are relative to ``offset``.
        """
        if size == 0:
            return []
        # Uncovered intervals, absolute: list of (start, end).
        uncovered = [(offset, offset + size)]
        found: List[Tuple[int, tuple]] = []
        for w_off, w_size, payload in reversed(writes):
            if not uncovered:
                break
            w_end = w_off + w_size
            next_uncovered = []
            for start, end in uncovered:
                lo = max(start, w_off)
                hi = min(end, w_end)
                if lo >= hi:
                    next_uncovered.append((start, end))
                    continue
                # [lo, hi) comes from this write.
                found.extend(
                    (abs_off - offset, piece)
                    for abs_off, piece in self._payload_slice(
                        payload, w_off, lo, hi - lo))
                if start < lo:
                    next_uncovered.append((start, lo))
                if hi < end:
                    next_uncovered.append((hi, end))
            uncovered = next_uncovered
        for start, end in uncovered:
            found.append((start - offset, ("zero", end - start)))
        found.sort(key=lambda item: item[0])
        return found

    def _payload_slice(self, payload, payload_abs_off: int,
                       abs_start: int, length: int
                       ) -> List[Tuple[int, tuple]]:
        """Slice [abs_start, abs_start+length) out of one write payload."""
        rel = abs_start - payload_abs_off
        kind = payload[0]
        if kind == "bytes":
            return [(abs_start, ("bytes", payload[1][rel:rel + length]))]
        if kind == "word":
            operand = payload[1]
            if is_reg(operand):
                return [(abs_start, ("reg", operand, rel, length))]
            word = int_to_bytes32(operand)
            return [(abs_start, ("bytes", word[rel:rel + length]))]
        # "pieces": nested piece list with relative offsets.
        result = []
        for p_off, piece in payload[1]:
            p_len = _piece_len(piece)
            lo = max(rel, p_off)
            hi = min(rel + length, p_off + p_len)
            if lo >= hi:
                continue
            result.append((payload_abs_off + lo,
                           _slice_piece(piece, lo - p_off, hi - lo)))
        return result

    def _pieces_to_operand(self, pieces: List[Tuple[int, tuple]],
                           size: int, concrete_value: int):
        """Collapse a piece list into a single operand.

        Returns a Reg or int constant.  Emits an MCONCAT compute when the
        region mixes register slices with other content (the decomposed
        memory-read made explicit).
        """
        if len(pieces) == 1 and pieces[0][0] == 0:
            piece = pieces[0][1]
            if piece[0] == "reg" and piece[2] == 0 and piece[3] == 32 \
                    and size == 32:
                return piece[1]
        if all(piece[0] in ("bytes", "zero") for _, piece in pieces):
            return concrete_value
        regs = []
        layout = []
        for rel_off, piece in pieces:
            if piece[0] == "reg":
                layout.append(("reg", rel_off, len(regs),
                               piece[2], piece[3]))
                regs.append(piece[1])
            elif piece[0] == "bytes":
                layout.append(("bytes", rel_off, piece[1]))
            else:
                layout.append(("zero", rel_off, piece[1]))
        dest = self._new_reg(concrete_value)
        self._emit(SInstr(
            kind=SKind.COMPUTE, op="MCONCAT", dest=dest, args=tuple(regs),
            meta={"layout": layout, "size": size}))
        return dest

    def _resolve_word(self, frame: _SymFrame, offset: int,
                      concrete_value: int):
        pieces = self._resolve_pieces(frame.writes, offset, 32)
        return self._pieces_to_operand(pieces, 32, concrete_value)

    def _resolve_region_words(self, frame: _SymFrame, offset: int,
                              size: int, concrete_bytes: bytes) -> List:
        """Region as a list of word operands (tail zero-padded)."""
        operands = []
        for word_start in range(0, size, 32):
            word_len = min(32, size - word_start)
            pieces = self._resolve_pieces(
                frame.writes, offset + word_start, word_len)
            chunk = concrete_bytes[word_start:word_start + word_len]
            concrete_word = int.from_bytes(
                chunk + b"\x00" * (32 - len(chunk)), "big")
            if word_len < 32:
                pieces = pieces + [(word_len, ("zero", 32 - word_len))]
            operands.append(
                self._pieces_to_operand(pieces, 32, concrete_word))
        return operands

    def _calldata_word(self, frame: _SymFrame, offset: int,
                       concrete_value: int):
        """CALLDATALOAD: 32 bytes of the frame's calldata, zero-padded."""
        pieces = []
        remaining = [(offset, offset + 32)]
        for p_off, piece in frame.calldata_pieces:
            p_len = _piece_len(piece)
            next_remaining = []
            for start, end in remaining:
                lo = max(start, p_off)
                hi = min(end, p_off + p_len)
                if lo >= hi:
                    next_remaining.append((start, end))
                    continue
                pieces.append((lo - offset,
                               _slice_piece(piece, lo - p_off, hi - lo)))
                if start < lo:
                    next_remaining.append((start, lo))
                if hi < end:
                    next_remaining.append((hi, end))
            remaining = next_remaining
        for start, end in remaining:
            pieces.append((start - offset, ("zero", end - start)))
        pieces.sort(key=lambda item: item[0])
        return self._pieces_to_operand(pieces, 32, concrete_value)

    # -- main walk ----------------------------------------------------------------

    def translate(self) -> TranslationResult:
        """Translate the whole trace; raises SpeculationError if the
        trace uses a feature outside the supported subset."""
        trace = self.trace
        tx = trace.tx
        # Top-level frame: calldata is the transaction payload (constant).
        top = _SymFrame(
            frame_id=0, code_address=tx.to, depth=0,
            calldata_pieces=[(0, ("bytes", tx.data))],
            calldata_size=len(tx.data))
        self._frames[0] = top
        self._frame_stack = [top]
        self._ancestry[0] = (0,)

        for step in trace.steps:
            self._sync_frames(step)
            self._translate_step(step)

        self._discard_reverted_writes()
        if not trace.result.success:
            # Top-level failure: every state write was reverted; the AP
            # keeps only reads/computes/guards (constraint checking).
            self.instrs = [i for i in self.instrs if i.kind is not SKind.WRITE]
        return TranslationResult(
            instrs=self.instrs,
            concrete=self.concrete,
            return_pieces=self._top_return[0],
            return_size=self._top_return[1],
            success=trace.result.success,
            gas_used=trace.result.gas_used,
            stats=self.stats,
            read_set=dict(trace.read_set),
            write_set=dict(trace.write_set),
        )

    def _sync_frames(self, step: StepRecord) -> None:
        """Enter/exit symbolic frames to match the step's frame."""
        current = self._frame_stack[-1]
        if step.frame_id == current.frame_id:
            return
        if step.frame_id in self._frames:
            # Returning to an ancestor frame.
            while self._frame_stack[-1].frame_id != step.frame_id:
                exited = self._frame_stack.pop()
                event = self.trace.frames.get(exited.frame_id)
                if event is not None and not event.success:
                    self._mark_frame_reverted(exited.frame_id)
            return
        # Entering a new frame.
        if self._pending_calldata is None:
            raise SpeculationError(
                f"frame {step.frame_id} entered without a CALL")
        pieces, size = self._pending_calldata
        self._pending_calldata = None
        frame = _SymFrame(
            frame_id=step.frame_id, code_address=step.code_address,
            depth=step.depth, calldata_pieces=pieces, calldata_size=size)
        self._frames[step.frame_id] = frame
        self._ancestry[step.frame_id] = self._frame_tag() + (step.frame_id,)
        self._frame_stack.append(frame)

    _reverted_frames: set = None

    def _mark_frame_reverted(self, frame_id: int) -> None:
        if self._reverted_frames is None:
            self._reverted_frames = set()
        self._reverted_frames.add(frame_id)

    def _discard_reverted_writes(self) -> None:
        """Drop writes made inside frames that ultimately reverted."""
        # Catch frames whose failure we only learn from the trace events.
        for event in self.trace.frames.values():
            if not event.success:
                self._mark_frame_reverted(event.frame_id)
        if not self._reverted_frames:
            return
        reverted = self._reverted_frames
        kept = []
        for instr in self.instrs:
            tag = instr.meta.get("frame_tag")
            if (instr.kind is SKind.WRITE and tag is not None
                    and any(fid in reverted for fid in tag)):
                continue
            kept.append(instr)
        self.instrs = kept

    # -- per-step translation ------------------------------------------------------

    # pylint: disable=too-many-branches,too-many-statements
    def _translate_step(self, step: StepRecord) -> None:
        frame = self._frame_stack[-1]
        stack = frame.stack
        op = step.op
        stats = self.stats

        if step.name == "CALL_RESULT":
            self._finish_call(step, frame)
            return

        info = opcodes.OPCODES[op]
        category = info.category

        # ---- stack manipulation: symbolic only --------------------------------
        if category is Category.STACK:
            stats.eliminated_stack += 1
            if opcodes.is_push(op):
                stack.append(step.output)
            elif opcodes.is_dup(op):
                stack.append(stack[-(op - 0x80 + 1)])
            elif opcodes.is_swap(op):
                n = op - 0x90 + 1
                stack[-1], stack[-1 - n] = stack[-1 - n], stack[-1]
            return

        if op == int(Op.POP):
            stats.eliminated_stack += 1
            stack.pop()
            return

        # ---- pure computation ----------------------------------------------------
        if op in PURE_OP_NAMES:
            arity = info.pops
            args = tuple(stack.pop() for _ in range(arity))
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.COMPUTE, op=PURE_OP_NAMES[op],
                              dest=dest, args=args))
            stack.append(dest)
            return

        # ---- transaction constants -------------------------------------------------
        if category is Category.TX_CONSTANT and op != int(Op.CALLDATALOAD):
            for _ in range(info.pops):
                stack.pop()
            stats.eliminated_state += 1
            stack.append(step.output)
            return
        if op == int(Op.GAS) or op == int(Op.MSIZE):
            # Constant along a fixed path (flat gas schedule, guarded
            # memory offsets).
            stats.eliminated_state += 1
            stack.append(step.output)
            return

        if op == int(Op.CALLDATALOAD):
            offset_op = stack.pop()
            offset = step.extra["data_offset"]
            self._guard_eq(offset_op, offset, is_control=False)
            if frame.depth == 0:
                stats.eliminated_state += 1
                stack.append(step.output)
            else:
                stats.decomposed_added += 1
                stats.eliminated_mem += 1
                stack.append(self._calldata_word(frame, offset, step.output))
            return

        # ---- context reads -------------------------------------------------------------
        if op in (int(Op.TIMESTAMP), int(Op.NUMBER), int(Op.COINBASE),
                  int(Op.DIFFICULTY), int(Op.GASLIMIT)):
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.READ, op=info.name, dest=dest,
                              key=step.extra["read_key"]))
            stack.append(dest)
            return
        if op == int(Op.SLOAD):
            slot_op = stack.pop()
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.READ, op="SLOAD", dest=dest,
                              args=(slot_op,), key=(frame.code_address,)))
            stack.append(dest)
            return
        if op in (int(Op.BALANCE), int(Op.EXTCODESIZE), int(Op.BLOCKHASH)):
            address_op = stack.pop()
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.READ, op=info.name, dest=dest,
                              args=(address_op,)))
            stack.append(dest)
            return
        if op == int(Op.SELFBALANCE):
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.READ, op="BALANCE", dest=dest,
                              args=(frame.code_address,)))
            stack.append(dest)
            return

        # ---- memory --------------------------------------------------------------------
        if op == int(Op.MLOAD):
            offset_op = stack.pop()
            offset = step.extra["mem_offset"]
            self._guard_eq(offset_op, offset, is_control=False)
            stats.eliminated_mem += 1
            stack.append(self._resolve_word(frame, offset, step.output))
            return
        if op == int(Op.MSTORE):
            offset_op = stack.pop()
            value_op = stack.pop()
            offset = step.extra["mem_offset"]
            self._guard_eq(offset_op, offset, is_control=False)
            stats.eliminated_mem += 1
            frame.writes.append((offset, 32, ("word", value_op)))
            return
        if op == int(Op.MSTORE8):
            offset_op = stack.pop()
            value_op = stack.pop()
            offset = step.extra["mem_offset"]
            self._guard_eq(offset_op, offset, is_control=False)
            stats.eliminated_mem += 1
            if is_reg(value_op):
                raise SpeculationError("MSTORE8 of a register value")
            frame.writes.append(
                (offset, 1, ("bytes", bytes([value_op & 0xFF]))))
            return
        if op in (int(Op.CALLDATACOPY), int(Op.CODECOPY)):
            # CODECOPY: the executing contract's code is pinned by the
            # call-target guards, so the copied bytes are constants —
            # same treatment as top-level calldata.
            dest_op = stack.pop()
            offset_op = stack.pop()
            size_op = stack.pop()
            dest = step.extra["mem_offset"]
            size = step.extra["mem_size"]
            self._guard_eq(dest_op, dest, is_control=False)
            self._guard_eq(offset_op, step.inputs[1], is_control=False)
            self._guard_eq(size_op, size, is_control=False)
            stats.eliminated_mem += 1
            stats.decomposed_added += 1
            frame.writes.append((dest, size, ("bytes", step.extra["data"])))
            return

        # ---- SHA3: decomposed into memory resolution + register hash ---------------------
        if op == int(Op.SHA3):
            offset_op = stack.pop()
            size_op = stack.pop()
            offset = step.extra["mem_offset"]
            size = step.extra["mem_size"]
            self._guard_eq(offset_op, offset, is_control=False)
            self._guard_eq(size_op, size, is_control=False)
            stats.decomposed_added += 1   # the memory-read half
            stats.eliminated_mem += 1     # ...which promotion removes
            words = self._resolve_region_words(
                frame, offset, size, step.extra["data"])
            dest = self._new_reg(step.output)
            self._emit(SInstr(kind=SKind.COMPUTE, op=COMPUTE_SHA3,
                              dest=dest, args=tuple(words),
                              meta={"size": size}))
            stack.append(dest)
            return

        # ---- control flow -----------------------------------------------------------------
        if op == int(Op.JUMPDEST):
            stats.eliminated_control += 1
            return
        if op == int(Op.JUMP):
            target_op = stack.pop()
            stats.eliminated_control += 1
            self._guard_eq(target_op, step.extra["jump_target"],
                           is_control=True)
            return
        if op == int(Op.JUMPI):
            target_op = stack.pop()
            cond_op = stack.pop()
            stats.eliminated_control += 1
            self._guard_eq(target_op, step.extra["jump_target"],
                           is_control=True)
            self._guard_truth(cond_op, step.extra["taken"])
            return

        # ---- logging --------------------------------------------------------------------------
        if opcodes.is_log(op):
            topic_count = op - 0xA0
            offset_op = stack.pop()
            size_op = stack.pop()
            topics = tuple(stack.pop() for _ in range(topic_count))
            offset = step.extra["mem_offset"]
            size = step.extra["mem_size"]
            self._guard_eq(offset_op, offset, is_control=False)
            self._guard_eq(size_op, size, is_control=False)
            words = self._resolve_region_words(
                frame, offset, size, step.extra["data"])
            self._emit(SInstr(
                kind=SKind.WRITE, op="LOG", args=topics + tuple(words),
                key=(frame.code_address,),
                meta={"topic_count": topic_count, "data_size": size,
                      "frame_tag": self._frame_tag()}))
            return

        # ---- storage writes ----------------------------------------------------------------------
        if op == int(Op.SSTORE):
            slot_op = stack.pop()
            value_op = stack.pop()
            self._emit(SInstr(
                kind=SKind.WRITE, op="SSTORE", args=(slot_op, value_op),
                key=(frame.code_address,),
                meta={"frame_tag": self._frame_tag()}))
            return

        # ---- return-data access ---------------------------------------------------------------------
        if op == int(Op.RETURNDATASIZE):
            # Constant under CD-Equiv: the sub-call's path (hence its
            # RETURN size) is pinned by the guards.
            stats.eliminated_mem += 1
            stack.append(step.output)
            return
        if op == int(Op.RETURNDATACOPY):
            dest_op = stack.pop()
            offset_op = stack.pop()
            size_op = stack.pop()
            dest = step.extra["mem_offset"]
            size = step.extra["mem_size"]
            src = step.extra["src_offset"]
            self._guard_eq(dest_op, dest, is_control=False)
            self._guard_eq(offset_op, src, is_control=False)
            self._guard_eq(size_op, size, is_control=False)
            stats.eliminated_mem += 1
            pieces, _actual = frame.returndata
            sliced = []
            for p_off, piece in pieces:
                p_len = _piece_len(piece)
                lo = max(p_off, src)
                hi = min(p_off + p_len, src + size)
                if lo < hi:
                    sliced.append((lo - src,
                                   _slice_piece(piece, lo - p_off,
                                                hi - lo)))
            frame.writes.append((dest, size, ("pieces", sliced)))
            return

        # ---- contract creation: outside the specialized subset ---------------------------------------
        if op == int(Op.CREATE):
            raise SpeculationError(
                "contract creation is not specialized (deployments "
                "execute through the normal path)")

        # ---- calls and termination ----------------------------------------------------------------
        if op in (int(Op.CALL), int(Op.DELEGATECALL), int(Op.STATICCALL)):
            self._start_call(step, frame, op)
            return
        if op in (int(Op.STOP), int(Op.RETURN), int(Op.REVERT)):
            self._finish_frame(step, frame)
            return

        raise SpeculationError(f"unsupported opcode in trace: {info.name}")

    # -- call handling -------------------------------------------------------------

    def _start_call(self, step: StepRecord, frame: _SymFrame,
                    op: int) -> None:
        stack = frame.stack
        # CALL: gas, to, value, arg_off, arg_size, ret_off, ret_size;
        # DELEGATECALL/STATICCALL omit the value operand.
        _gas_op = stack.pop()
        to_op = stack.pop()
        value_op = stack.pop() if op == int(Op.CALL) else 0
        arg_off_op = stack.pop()
        arg_size_op = stack.pop()
        ret_off_op = stack.pop()
        ret_size_op = stack.pop()
        self.stats.eliminated_control += 1  # the call machinery itself
        self.stats.decomposed_added += 2    # calldata marshal + ret write
        to = step.extra["call_to"]
        value = step.extra["call_value"]
        # CD-Equiv: the callee's identity is a control decision.
        self._guard_eq(to_op, to, is_control=True)
        if op == int(Op.CALL) and (is_reg(value_op) or value != 0):
            raise SpeculationError(
                "CALL with value transfer is outside the supported subset")
        arg_off = step.extra["mem_offset"]
        arg_size = step.extra["mem_size"]
        self._guard_eq(arg_off_op, arg_off, is_control=False)
        self._guard_eq(arg_size_op, arg_size, is_control=False)
        self._guard_eq(ret_off_op, step.extra["ret_offset"],
                       is_control=False)
        self._guard_eq(ret_size_op, step.extra["ret_size"],
                       is_control=False)
        pieces = self._resolve_pieces(frame.writes, arg_off, arg_size)
        self._pending_calldata = (pieces, arg_size)

    def _finish_call(self, step: StepRecord, frame: _SymFrame) -> None:
        """CALL_RESULT: success flag is path-constant; copy return data."""
        success = step.extra["call_success"]
        ret_off = step.extra["ret_offset"]
        ret_size = step.extra["ret_size"]
        frame.returndata = self._last_return
        if ret_size:
            pieces, actual = self._last_return
            sliced = [(off, piece) for off, piece in pieces
                      if off < ret_size]
            if actual < ret_size:
                sliced.append((actual, ("zero", ret_size - actual)))
            frame.writes.append((ret_off, ret_size, ("pieces", sliced)))
        frame.stack.append(1 if success else 0)

    def _finish_frame(self, step: StepRecord, frame: _SymFrame) -> None:
        self.stats.eliminated_control += 1
        if step.op == int(Op.STOP):
            pieces: List[Tuple[int, tuple]] = []
            size = 0
        else:
            offset_op = step.inputs[0] if step.inputs else 0
            size = step.extra["mem_size"]
            offset = step.extra["mem_offset"]
            # Operand stack already popped by the interpreter; symbolically:
            off_sym = frame.stack.pop()
            size_sym = frame.stack.pop()
            self._guard_eq(off_sym, offset, is_control=False)
            self._guard_eq(size_sym, size, is_control=False)
            del offset_op
            pieces = self._resolve_pieces(frame.writes, offset, size)
        self._last_return = (pieces, size)
        if frame.depth == 0:
            self._top_return = (pieces, size)


def translate_trace(trace: TraceResult) -> TranslationResult:
    """Convenience wrapper: translate one trace into S-EVM."""
    return Translator(trace).translate()
