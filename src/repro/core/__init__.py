"""Forerunner's core: constraint-based speculative transaction execution.

The pipeline (paper §4):

1. :mod:`repro.core.trace` — instrumented pre-execution producing an EVM
   instruction trace plus read/write sets.
2. :mod:`repro.core.translate` — trace -> S-EVM register IR: complex
   instruction decomposition, stack-to-SSA translation, register
   promotion, control-flow elimination, with control and data guards
   generated along the way (CD-Equiv constraints).
3. :mod:`repro.core.optimize` — constant folding, common-subexpression
   elimination, context-access promotion, dead-code elimination,
   rollback-free write reordering.
4. :mod:`repro.core.memoize` — shortcut nodes over compute segments.
5. :mod:`repro.core.ap` / :mod:`repro.core.merge` — accelerated programs
   (merged constraint sets + fast paths + merged shortcuts) and their
   execution engine with fallback.
6. :mod:`repro.core.predictor` / :mod:`repro.core.speculator` /
   :mod:`repro.core.prefetcher` — the off-critical-path machinery.
7. :mod:`repro.core.accelerator` / :mod:`repro.core.node` — the
   on-critical-path executor and full node assemblies.
"""

from repro.core.trace import TxTracer, TraceResult, trace_transaction
from repro.core.sevm import SInstr, Reg, SKind
from repro.core.ap import AcceleratedProgram, APPath
from repro.core.speculator import Speculator, synthesize_path
from repro.core.accelerator import TransactionAccelerator
from repro.core.node import BaselineNode, ForerunnerNode

__all__ = [
    "TxTracer", "TraceResult", "trace_transaction",
    "SInstr", "Reg", "SKind",
    "AcceleratedProgram", "APPath",
    "Speculator", "synthesize_path",
    "TransactionAccelerator",
    "BaselineNode", "ForerunnerNode",
]
