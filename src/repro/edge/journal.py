"""Journaled accepted-transaction log (edge durability).

``eth_sendRawTransaction`` acknowledges acceptance to the client; that
acknowledgement is a durability promise — an accepted-but-not-yet-
committed transaction must survive an edge crash.  The log reuses the
recovery layer's CRC-framed write-ahead journal
(:mod:`repro.recovery.journal`): one ``edge.accept`` record per
accepted transaction, appended *before* the transaction enters the
node's pool, torn tails truncated on recovery exactly like the node's
own WAL.

Recovery replays the log against a fresh node: transactions whose
hashes already appear in committed blocks are skipped (they were
served), the rest re-enter the pending pool with their original heard
times — so a restarted edge resumes speculating on exactly the
accepted-but-unserved backlog.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.faults.injector import NULL_INJECTOR
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)

RECORD_ACCEPT = "edge.accept"


def _tx_payload(tx: Transaction) -> dict:
    return {
        "sender": tx.sender,
        "to": tx.to,
        "data": tx.data.hex(),
        "value": tx.value,
        "gas_price": tx.gas_price,
        "gas_limit": tx.gas_limit,
        "nonce": tx.nonce,
    }


def _tx_from_payload(data: dict) -> Transaction:
    return Transaction(
        sender=int(data["sender"]),
        to=int(data["to"]),
        data=bytes.fromhex(data["data"]),
        value=int(data["value"]),
        gas_price=int(data["gas_price"]),
        gas_limit=int(data["gas_limit"]),
        nonce=int(data["nonce"]),
    )


class AcceptedTxLog:
    """Durable log of transactions the edge acknowledged."""

    def __init__(self, path: str, injector=NULL_INJECTOR,
                 obs=None, next_seq: int = 0) -> None:
        self.path = path
        self._writer = JournalWriter(path, injector=injector, obs=obs,
                                     next_seq=next_seq)
        self.accepted = 0

    def record(self, tx: Transaction, now: float) -> None:
        """Append one acceptance (synced: it is an acknowledgement)."""
        self._writer.append(
            RECORD_ACCEPT, _tx_payload(tx), sync=True,
            clock={"sim_seconds": round(now, 6), "tx": tx.hash})
        self.accepted += 1

    def close(self) -> None:
        self._writer.close()


def recover_accepted(path: str) -> Tuple[List[Tuple[Transaction, float]],
                                         int, int]:
    """Scan an accepted-tx log after a crash.

    Truncates any torn tail, then returns
    ``(entries, torn_bytes, next_seq)`` where ``entries`` is the
    ``(tx, heard_time)`` list in acceptance order.  A missing file is
    an empty log (the edge never accepted anything).
    """
    if not os.path.exists(path):
        return [], 0, 0
    torn = truncate_torn_tail(path)
    scan = read_journal(path)
    entries: List[Tuple[Transaction, float]] = []
    for record in scan.records:
        if record.type != RECORD_ACCEPT:
            continue
        heard = float(record.clock.get("sim_seconds", 0.0))
        entries.append((_tx_from_payload(record.data), heard))
    return entries, torn, scan.next_seq


def restore_pool(node, entries, committed: Optional[set] = None) -> int:
    """Re-inject accepted-but-unserved transactions into ``node``.

    ``committed`` is the set of tx hashes already in committed blocks
    (those were served; re-injecting them would double-execute).
    Returns the number of transactions restored.
    """
    committed = committed if committed is not None else {
        record.tx_hash
        for report in node.reports for record in report.records}
    restored = 0
    for tx, heard in entries:
        if tx.hash in committed:
            continue
        node.on_transaction(tx, heard)
        restored += 1
    return restored
