"""The serving edge: JSON-RPC answered from the speculation pipeline.

One :class:`EdgeServer` fronts one :class:`~repro.core.node.ForerunnerNode`
and serves four methods:

``eth_sendRawTransaction``
    Journals the acceptance (durability promise), injects the
    transaction into the node's pending pool, and stamps a speculation
    deadline into the scheduler's admission controller — expired
    speculation work is cancelled there, never executed.
``eth_call``
    Answered from the speculation pipeline when possible: a memoized
    result at the current world version, or a ready accelerated
    program for a matching pending transaction, costs a few hundred
    units; a miss falls back to on-demand plain execution (thousands).
``eth_getTransactionReceipt``
    Index lookup over committed block reports; optionally carries the
    transaction's execution witness digest + body.
``debug_traceTransaction``
    Served from the recorded execution witness when one exists (cheap);
    otherwise the trace is rebuilt by simulated re-execution at the
    recorded cost.

Every request runs the same admission pipeline — parse, rate limit,
circuit breaker, brownout ladder, bulkhead backpressure, deadline check
— and every outcome is a structured JSON-RPC response.  All latencies
and costs are deterministic simulated quantities; two runs of the same
scenario produce byte-identical responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.edge import rpc
from repro.edge.brownout import BrownoutConfig, BrownoutController
from repro.edge.faults import (
    SITE_HANDLER_STALL,
    SITE_MALFORMED,
    SITE_SLOW_CLIENT,
    corrupt_frame,
)
from repro.edge.limits import Bulkhead, Deadline, LruMap, TokenBucket
from repro.faults.guard import CircuitBreaker
from repro.faults.injector import NULL_INJECTOR
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry, get_registry
from repro.state.statedb import StateDB
from repro.witness.format import witness_digest, witness_to_dict

#: The methods the edge serves, in breaker-contract-id order.
METHODS = (
    "eth_sendRawTransaction",
    "eth_call",
    "eth_getTransactionReceipt",
    "debug_traceTransaction",
)

# -- handler cost constants (cost units) -------------------------------------
#: Validate + journal + pool insert for an accepted transaction.
ACCEPT_COST = 500
#: Committed-index lookup (receipts, witness-backed traces).
LOOKUP_COST = 150
#: Serving a memoized call result (cache probe + encode).
MEMO_COST = 200
#: Assembling a trace response from a recorded witness.
WITNESS_TRACE_COST = 400
#: Flat latency charged to rejected frames (parse, shed, limits);
#: rejections never occupy a bulkhead.
REJECT_COST = 40


@dataclass
class EdgeConfig:
    """Tunables for the serving edge."""

    #: Handler throughput, cost units per simulated second per method
    #: server (each method has its own single-server bulkhead).
    service_rate: float = 60_000.0
    #: Bounded per-method queue depth (the bulkhead capacity).
    queue_capacity: int = 10
    #: Default request deadline budget in cost units (clients may
    #: attach their own; this is the admission stamp for the rest).
    default_deadline_units: int = 120_000
    #: Per-client token bucket (requests; continuous refill).
    bucket_capacity: float = 30.0
    bucket_refill_per_second: float = 15.0
    #: Bound on live per-client buckets (deterministic LRU eviction;
    #: an evicted client that returns gets a fresh full bucket).
    client_state_capacity: int = 4096
    #: Brownout ladder thresholds.
    brownout: BrownoutConfig = field(default_factory=BrownoutConfig)
    #: Circuit breaker per method (clock = served cost units).
    breaker_threshold: int = 4
    breaker_cooldown_units: int = 240_000
    #: Speculation deadline stamped into sched admission for accepted
    #: transactions (simulated seconds of useful speculation).
    speculation_deadline_seconds: float = 30.0
    #: Attach execution witness digest + body to receipt/trace
    #: responses (requires the node's ``enable_witness``).
    attach_witnesses: bool = False
    #: Cross-check every fast-path (memo/AP) ``eth_call`` response
    #: against a fresh plain execution — the serving-equivalence
    #: oracle.  Costs nothing in simulated time.
    verify_responses: bool = False
    #: Memoized ``eth_call`` results kept (deterministic LRU).
    call_memo_capacity: int = 512
    #: Serve memo entries up to this many world versions old while the
    #: brownout ladder is at ``degraded`` or above (stale reads).
    stale_read_versions: int = 1


@dataclass
class RequestOutcome:
    """Per-request accounting row (one line of the serving trace)."""

    method: str
    client: int
    status: str
    code: Optional[int]
    latency_units: int
    cost_units: int
    cheap: bool
    stale: bool
    level: int
    attempt: int

    def as_dict(self) -> dict:
        row = {"method": self.method, "client": self.client,
               "status": self.status, "latency": self.latency_units,
               "cost": self.cost_units, "level": self.level,
               "attempt": self.attempt}
        if self.code is not None:
            row["code"] = self.code
        if self.stale:
            row["stale"] = True
        return row


class EdgeServer:
    """The overload-resilient JSON-RPC front end."""

    def __init__(self, node, config: Optional[EdgeConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 injector=NULL_INJECTOR,
                 accepted_log=None) -> None:
        self.node = node
        self.config = config or EdgeConfig()
        self.registry = registry or get_registry()
        self.injector = injector
        self.accepted_log = accepted_log
        config = self.config
        self.bulkheads: Dict[str, Bulkhead] = {
            method: Bulkhead(method, config.queue_capacity,
                             config.service_rate)
            for method in METHODS}
        self.buckets = LruMap(config.client_state_capacity)
        self.brownout = BrownoutController(config.brownout, self.registry)
        #: Monotone served-cost clock driving the breaker cool-downs.
        self._served_units = 0
        self.breaker = CircuitBreaker(
            clock=lambda: self._served_units,
            threshold=config.breaker_threshold,
            cooldown_units=config.breaker_cooldown_units,
            registry=self.registry)
        obs = self.registry.scope("edge")
        self.c_requests = obs.counter("requests")
        self.c_served = obs.counter("served")
        self.c_backpressure = obs.counter("backpressure")
        self.c_rate_limited = obs.counter("rate_limited")
        self.c_deadline_cancelled = obs.counter("deadline_cancelled")
        self.c_deadline_overrun = obs.counter("deadline_overrun")
        self.c_breaker_rejects = obs.counter("breaker_rejects")
        self.c_malformed = obs.counter("malformed")
        self.c_internal_errors = obs.counter("internal_errors")
        self.c_accepted = obs.counter("accepted_txs")
        self.c_call_memo_hits = obs.counter("call_memo_hits")
        self.c_call_ap_hits = obs.counter("call_ap_hits")
        self.c_call_plain = obs.counter("call_plain")
        self.c_stale_reads = obs.counter("stale_reads")
        self.g_depth = obs.gauge("queue_depth")
        self._method_stats: Dict[str, dict] = {}
        for method in METHODS:
            scope = self.registry.scope("edge.method." + method)
            self._method_stats[method] = {
                "requests": scope.counter("requests"),
                "served": scope.counter("served"),
                "rejected": scope.counter("rejected"),
                "latency": scope.histogram("latency_units"),
            }
        # -- serving indexes over the node's committed history ----------
        self.head_header: Optional[BlockHeader] = None
        self._receipt_index: Dict[int, tuple] = {}
        self._reports_seen = 0
        self._witness_index: Dict[int, object] = {}
        self._witnesses_seen = 0
        # eth_call memo: key -> (world_version, result_dict, tx_used).
        self._call_memo: "Dict[tuple, tuple]" = {}
        self._call_memo_order: List[tuple] = []
        # Pending-pool call index: key -> tx_hash (rebuilt on pool change).
        self._pool_index: Dict[tuple, int] = {}
        self._pool_index_version = -1
        #: Fast-path responses that failed the plain-execution
        #: cross-check (must stay zero; the serving-equivalence gate).
        self.verify_mismatches = 0
        self.outcomes: List[RequestOutcome] = []
        #: Optional acceptance hook ``(tx, now) -> None``, called after
        #: a send is newly accepted.  The fleet router uses it to hand
        #: accepted transactions to the supervisor (shard journal +
        #: broadcast to every replica).
        self.on_accept = None

    # -- node lifecycle hooks --------------------------------------------

    def on_block(self, block, report) -> None:
        """A block committed: refresh the serving indexes."""
        self.head_header = block.header
        self._refresh_indexes()

    def _refresh_indexes(self) -> None:
        node = self.node
        for report in node.reports[self._reports_seen:]:
            for record in report.records:
                self._receipt_index[record.tx_hash] = (report.block_number,
                                                       record)
        self._reports_seen = len(node.reports)
        for witness in node.witnesses[self._witnesses_seen:]:
            self._witness_index[witness.tx_hash] = witness
        self._witnesses_seen = len(node.witnesses)

    # -- the admission pipeline ------------------------------------------

    def handle_raw(self, raw: str, client_id: int, now: float,
                   weight: float = 1.0,
                   deadline_units: Optional[int] = None,
                   deadline: Optional[Deadline] = None,
                   attempt: int = 1
                   ) -> Tuple[dict, RequestOutcome]:
        """Serve one raw frame; returns ``(response, outcome)``.

        ``deadline`` (when given) is the request's *original* deadline
        — retries pass it through so backing off never buys more time.
        Never raises: every fate — malformed frame, overload rejection,
        handler bug — becomes a structured JSON-RPC response.
        """
        self.c_requests.inc()
        # Chaos: a malformed-request fault mangles the frame before the
        # parser ever sees it.
        if self.injector.evaluate(SITE_MALFORMED, client=client_id) \
                is not None:
            raw = corrupt_frame(raw, self.injector.rng(SITE_MALFORMED))
        try:
            request = rpc.parse_request(raw)
        except rpc.RpcError as exc:
            self.c_malformed.inc()
            return self._reject(None, None, client_id, exc.code,
                                exc.message, exc.data, now, attempt)
        if request.method not in METHODS:
            return self._reject(request.id, None, client_id,
                                rpc.METHOD_NOT_FOUND,
                                data={"method": request.method[:64]},
                                now=now, attempt=attempt)
        method = request.method
        stats = self._method_stats[method]
        stats["requests"].inc()
        # Rate limit (per-client token bucket).
        bucket = self.buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.config.bucket_capacity,
                                 self.config.bucket_refill_per_second)
            self.buckets.set(client_id, bucket)
        if not bucket.try_take(now):
            self.c_rate_limited.inc()
            return self._reject(request.id, method, client_id,
                                rpc.RATE_LIMITED, now=now, attempt=attempt)
        if deadline is None:
            deadline = Deadline.from_budget(
                now, deadline_units or self.config.default_deadline_units,
                self.config.service_rate)
        # Brownout: classify the request (cheap = answerable from the
        # speculation pipeline without fresh on-demand execution),
        # then ask the ladder.
        cheap, stale = self._classify(request, now)
        depth = sum(b.depth(now) for b in self.bulkheads.values())
        self.g_depth.set(depth)
        level = self.brownout.observe(now, depth)
        score = self.brownout.score(client_id, weight)
        if not self.brownout.admits(score, cheap):
            self.brownout.observe_outcome(client_id, False)
            return self._reject(request.id, method, client_id, rpc.SHED,
                                data={"level": level}, now=now,
                                attempt=attempt)
        # Circuit breaker (fail-fast on a persistently faulting method).
        method_id = METHODS.index(method)
        if not self.breaker.allows(method_id):
            self.c_breaker_rejects.inc()
            return self._reject(request.id, method, client_id,
                                rpc.BREAKER_OPEN, now=now, attempt=attempt)
        # Backpressure: bounded per-method queue.
        bulkhead = self.bulkheads[method]
        if not bulkhead.has_room(now):
            self.c_backpressure.inc()
            self.brownout.observe_outcome(client_id, False)
            return self._reject(request.id, method, client_id,
                                rpc.OVERLOADED,
                                data={"queue": bulkhead.depth(now)},
                                now=now, attempt=attempt)
        # Deadline propagation: if the request would only *start* after
        # its deadline, it is cancelled here — the work never executes.
        start = bulkhead.start_time(now)
        if deadline.expired(start):
            self.c_deadline_cancelled.inc()
            self.brownout.observe_outcome(client_id, False)
            return self._reject(
                request.id, method, client_id, rpc.DEADLINE_EXCEEDED,
                data={"phase": "queued",
                      "budget": deadline.budget_units},
                now=now, attempt=attempt)
        # Execute the handler inside a containment boundary.
        stall = self.injector.stall_units(SITE_SLOW_CLIENT,
                                          client=client_id)
        stall += self.injector.stall_units(SITE_HANDLER_STALL,
                                           method=method)
        try:
            result, cost = self._dispatch(request, now, stale)
        except rpc.RpcError as exc:
            return self._reject(request.id, method, client_id, exc.code,
                                exc.message, exc.data, now, attempt)
        except Exception:  # noqa: BLE001 — the containment boundary
            self.c_internal_errors.inc()
            self.breaker.record_fault(method_id)
            return self._reject(request.id, method, client_id,
                                rpc.INTERNAL_ERROR, now=now,
                                attempt=attempt)
        cost = int(cost) + stall
        _, finish = bulkhead.occupy(now, cost)
        self._served_units += cost
        latency_units = int(round((finish - now)
                                  * self.config.service_rate))
        if finish > deadline.expires_at:
            # The deadline expired mid-service: the client is told, the
            # spent work is accounted as overrun (not goodput).
            self.c_deadline_overrun.inc()
            self.breaker.record_fault(method_id)
            self.brownout.observe_latency(latency_units)
            self.brownout.observe_outcome(client_id, False)
            return self._reject(
                request.id, method, client_id, rpc.DEADLINE_EXCEEDED,
                data={"phase": "inflight",
                      "budget": deadline.budget_units},
                now=now, attempt=attempt,
                latency_units=latency_units, cost_units=cost)
        self.breaker.record_success(method_id)
        self.brownout.observe_latency(latency_units)
        self.brownout.observe_outcome(client_id, True)
        self.c_served.inc()
        stats["served"].inc()
        stats["latency"].observe(latency_units)
        outcome = RequestOutcome(
            method=method, client=client_id, status="served", code=None,
            latency_units=latency_units, cost_units=cost, cheap=cheap,
            stale=stale, level=self.brownout.level, attempt=attempt)
        self.outcomes.append(outcome)
        return rpc.success_response(request.id, result), outcome

    def _reject(self, req_id, method: Optional[str], client_id: int,
                code: int, message: Optional[str] = None,
                data: Optional[dict] = None, now: float = 0.0,
                attempt: int = 1, latency_units: int = REJECT_COST,
                cost_units: int = 0) -> Tuple[dict, RequestOutcome]:
        status, _ = rpc.classify(code)
        if method is not None:
            self._method_stats[method]["rejected"].inc()
        outcome = RequestOutcome(
            method=method or "?", client=client_id, status=status,
            code=code, latency_units=latency_units, cost_units=cost_units,
            cheap=False, stale=False, level=self.brownout.level,
            attempt=attempt)
        self.outcomes.append(outcome)
        return rpc.error_response(req_id, code, message, data), outcome

    # -- request classification (the brownout's cheap/expensive axis) -----

    def _classify(self, request: rpc.RpcRequest, now: float
                  ) -> Tuple[bool, bool]:
        """``(cheap, stale)`` without executing anything.

        Cheap = the speculation pipeline can answer without fresh
        on-demand execution.  ``stale`` marks a memoized call result
        from an allowed older world version (degraded-mode only).
        """
        method = request.method
        if method == "eth_sendRawTransaction":
            return True, False  # fixed-cost accept path
        if method == "eth_getTransactionReceipt":
            return True, False  # index lookup
        if method == "debug_traceTransaction":
            tx_hash = self._param_hash(request.params)
            if tx_hash is None:
                return True, False  # will be an invalid-params reject
            if tx_hash in self._witness_index:
                return True, False
            return tx_hash not in self._receipt_index, False
        # eth_call: cheap iff memoized (fresh or allowed-stale) or a
        # ready AP exists for a matching pending transaction.
        try:
            key = self._call_key(request.params)
        except rpc.RpcError:
            return True, False  # will be an invalid-params reject
        entry = self._call_memo.get(key)
        if entry is not None:
            version = entry[0]
            current = self.node.world.version
            if version == current:
                return True, False
            if (self.brownout.level > 0
                    and current - version
                    <= self.config.stale_read_versions):
                return True, True
        return self._pool_match(key, now) is not None, False

    @staticmethod
    def _param_hash(params: list) -> Optional[int]:
        if len(params) != 1 or not isinstance(params[0], str):
            return None
        try:
            return int(params[0], 16)
        except ValueError:
            return None

    @staticmethod
    def _call_key(params: list) -> tuple:
        if len(params) != 1 or not isinstance(params[0], dict):
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "expected one call object"})
        call = params[0]
        sender = _as_int(call.get("from"), "from")
        to = _as_int(call.get("to"), "to")
        data = _as_data(call.get("data", "0x"))
        value = _as_int(call.get("value", 0), "value")
        return (sender, to, data, value)

    def _pool_match(self, key: tuple, now: float) -> Optional[int]:
        """A pending pool transaction matching ``key`` with a ready AP."""
        node = self.node
        if self._pool_index_version != node._pool_version:
            self._pool_index = {
                (tx.sender, tx.to, tx.data, tx.value): tx_hash
                for tx_hash, (tx, _) in node.pool.items()}
            self._pool_index_version = node._pool_version
        tx_hash = self._pool_index.get(key)
        if tx_hash is None:
            return None
        ap = node.speculator.get_ap(tx_hash)
        if ap is not None and ap.root is not None and ap.ready_at <= now:
            return tx_hash
        return None

    # -- method handlers ---------------------------------------------------

    def _dispatch(self, request: rpc.RpcRequest, now: float,
                  stale: bool) -> Tuple[object, int]:
        method = request.method
        if method == "eth_sendRawTransaction":
            return self._handle_send(request.params, now)
        if method == "eth_getTransactionReceipt":
            return self._handle_receipt(request.params)
        if method == "debug_traceTransaction":
            return self._handle_trace(request.params)
        return self._handle_call(request.params, now, stale)

    def _handle_send(self, params: list, now: float) -> Tuple[dict, int]:
        if len(params) != 1 or not isinstance(params[0], dict):
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "expected one tx object"})
        raw = params[0]
        tx = Transaction(
            sender=_as_int(raw.get("from"), "from"),
            to=_as_int(raw.get("to"), "to"),
            data=_as_data(raw.get("data", "0x")),
            value=_as_int(raw.get("value", 0), "value"),
            gas_price=_as_int(raw.get("gasPrice", 1), "gasPrice"),
            gas_limit=_as_int(raw.get("gas", 1_000_000), "gas"),
            nonce=_as_int(raw.get("nonce", 0), "nonce"))
        known = (tx.hash in self.node.pool or tx.hash in self.node.heard
                 or tx.hash in self.node.executed)
        if not known:
            # Durability before acknowledgement: journal first.
            if self.accepted_log is not None:
                self.accepted_log.record(tx, now)
            self.node.on_transaction(tx, now)
            # Deadline propagation into the scheduler: speculation for
            # this transaction is only useful for so long.
            self.node.admission.set_deadline(
                tx.hash,
                now + self.config.speculation_deadline_seconds)
            self.c_accepted.inc()
            if self.on_accept is not None:
                self.on_accept(tx, now)
        return ({"txHash": _hex(tx.hash), "accepted": not known},
                ACCEPT_COST)

    def _handle_receipt(self, params: list) -> Tuple[object, int]:
        tx_hash = self._param_hash(params)
        if tx_hash is None:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "expected one tx hash"})
        self._refresh_indexes()
        entry = self._receipt_index.get(tx_hash)
        if entry is None:
            return None, LOOKUP_COST  # unknown or still pending -> null
        block_number, record = entry
        result = {
            "transactionHash": _hex(tx_hash),
            "blockNumber": block_number,
            "gasUsed": record.gas_used,
            "status": "0x1" if record.success else "0x0",
            "outcome": record.outcome,
            "tier": record.tier,
        }
        cost = LOOKUP_COST
        if self.config.attach_witnesses:
            witness = self._witness_index.get(tx_hash)
            if witness is not None:
                result["witness"] = {"digest": witness_digest(witness)}
                cost += LOOKUP_COST
        return result, cost

    def _handle_trace(self, params: list) -> Tuple[object, int]:
        tx_hash = self._param_hash(params)
        if tx_hash is None:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "expected one tx hash"})
        self._refresh_indexes()
        entry = self._receipt_index.get(tx_hash)
        if entry is None:
            return None, LOOKUP_COST
        block_number, record = entry
        result = {
            "transactionHash": _hex(tx_hash),
            "blockNumber": block_number,
            "gasUsed": record.gas_used,
            "success": record.success,
            "tier": record.tier,
            "outcome": record.outcome,
            "costUnits": record.cost,
        }
        witness = self._witness_index.get(tx_hash)
        if witness is not None:
            # Cheap path: the trace is assembled from the recorded
            # execution witness, no re-execution needed.
            if self.config.attach_witnesses:
                result["witness"] = {
                    "digest": witness_digest(witness),
                    "body": witness_to_dict(witness),
                }
            return result, WITNESS_TRACE_COST
        # No witness: the trace is rebuilt by re-executing the
        # transaction (simulated at its recorded execution cost).
        return result, max(record.cost, WITNESS_TRACE_COST)

    def _handle_call(self, params: list, now: float,
                     stale: bool) -> Tuple[dict, int]:
        key = self._call_key(params)
        entry = self._call_memo.get(key)
        current = self.node.world.version
        if entry is not None:
            version, result, tx_used = entry
            if version == current:
                self.c_call_memo_hits.inc()
                if self.config.verify_responses:
                    self._verify_call(tx_used, result)
                return result, MEMO_COST
            if stale:
                # Degraded-mode stale read: the bytes the direct
                # execution produced at `version`, explicitly marked.
                self.c_stale_reads.inc()
                return result, MEMO_COST
        tx_hash = self._pool_match(key, now)
        if tx_hash is not None:
            tx, _ = self.node.pool[tx_hash]
            ap = self.node.speculator.get_ap(tx_hash)
            state = StateDB(self.node.world)
            receipt = self.node.accelerator.execute(
                tx, self._call_header(now), state, ap)
            result = self._call_result(receipt, current)
            self.c_call_ap_hits.inc()
            if self.config.verify_responses:
                self._verify_call(tx, result)
            self._memoize_call(key, current, result, tx)
            return result, max(int(receipt.tally.total), MEMO_COST)
        # Miss: on-demand plain execution.
        sender, to, data, value = key
        state = StateDB(self.node.world)
        tx = Transaction(sender=sender, to=to, data=data, value=value,
                         gas_price=1, gas_limit=1_000_000,
                         nonce=state.get_nonce(sender))
        receipt = self.node.accelerator.execute_plain(
            tx, self._call_header(now), state)
        result = self._call_result(receipt, current)
        self.c_call_plain.inc()
        self._memoize_call(key, current, result, tx)
        return result, int(receipt.tally.total)

    def _call_header(self, now: float) -> BlockHeader:
        if self.head_header is not None:
            return self.head_header
        return BlockHeader(number=self.node.head_number,
                           timestamp=int(now), coinbase=0)

    @staticmethod
    def _call_result(receipt, version: int) -> dict:
        result = receipt.result
        return {
            "returnData": "0x" + result.return_data.hex(),
            "success": result.success,
            "gasUsed": result.gas_used,
            "version": version,
        }

    def _memoize_call(self, key: tuple, version: int, result: dict,
                      tx: Transaction) -> None:
        if key not in self._call_memo:
            self._call_memo_order.append(key)
        self._call_memo[key] = (version, result, tx)
        while len(self._call_memo_order) > self.config.call_memo_capacity:
            victim = self._call_memo_order.pop(0)
            self._call_memo.pop(victim, None)

    def _verify_call(self, tx: Transaction, served: dict) -> None:
        """The serving-equivalence oracle: re-execute plainly at the
        current world state and compare byte-for-byte."""
        state = StateDB(self.node.world)
        receipt = self.node.accelerator.execute_plain(
            tx, self._call_header(0.0), state)
        expected = self._call_result(receipt, self.node.world.version)
        if canonical_json(expected) != canonical_json(served):
            self.verify_mismatches += 1

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Canonical serving summary (part of the byte-stable report)."""
        per_method = {}
        for method in METHODS:
            stats = self._method_stats[method]
            per_method[method] = {
                "requests": stats["requests"].value,
                "served": stats["served"].value,
                "rejected": stats["rejected"].value,
            }
        return {
            "requests": self.c_requests.value,
            "served": self.c_served.value,
            "accepted_txs": self.c_accepted.value,
            "backpressure": self.c_backpressure.value,
            "rate_limited": self.c_rate_limited.value,
            "deadline_cancelled": self.c_deadline_cancelled.value,
            "deadline_overrun": self.c_deadline_overrun.value,
            "breaker_rejects": self.c_breaker_rejects.value,
            "malformed": self.c_malformed.value,
            "internal_errors": self.c_internal_errors.value,
            "call_memo_hits": self.c_call_memo_hits.value,
            "call_ap_hits": self.c_call_ap_hits.value,
            "call_plain": self.c_call_plain.value,
            "stale_reads": self.c_stale_reads.value,
            "verify_mismatches": self.verify_mismatches,
            "per_method": per_method,
            "brownout": self.brownout.summary(),
        }


def _as_int(value, name: str) -> int:
    if isinstance(value, bool) or value is None:
        raise rpc.RpcError(rpc.INVALID_PARAMS,
                           data={"reason": "bad field", "field": name})
    if isinstance(value, int):
        if value < 0:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "negative", "field": name})
        return value
    if isinstance(value, str):
        try:
            parsed = int(value, 16)
        except ValueError:
            raise rpc.RpcError(
                rpc.INVALID_PARAMS,
                data={"reason": "bad hex", "field": name}) from None
        if parsed < 0:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               data={"reason": "negative", "field": name})
        return parsed
    raise rpc.RpcError(rpc.INVALID_PARAMS,
                       data={"reason": "bad type", "field": name})


def _as_data(value) -> bytes:
    if not isinstance(value, str):
        raise rpc.RpcError(rpc.INVALID_PARAMS,
                           data={"reason": "data not hex text"})
    text = value[2:] if value.startswith("0x") else value
    if len(text) > 8192:
        raise rpc.RpcError(rpc.INVALID_PARAMS,
                           data={"reason": "data too large"})
    try:
        return bytes.fromhex(text)
    except ValueError:
        raise rpc.RpcError(rpc.INVALID_PARAMS,
                           data={"reason": "bad data hex"}) from None


def _hex(value: int) -> str:
    return f"{value:#x}"
