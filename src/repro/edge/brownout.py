"""Brownout ladder: graceful service degradation under overload.

Three levels, driven by deterministic gauges (total bulkhead queue
depth and an EWMA of served-request latency in cost units):

========== =================================================================
``full``    every request served normally
``degraded`` speculative-only / stale-read: requests the pipeline can
            answer cheaply (memoized call results, ready APs, committed
            receipt/witness lookups — including one-head-stale reads)
            are served; requests needing fresh on-demand execution are
            shed, lowest priority first
``shed``    only cheap requests from the highest-priority clients are
            served; everything else is shed immediately
========== =================================================================

Who gets shed first reuses the *scheduler's* admission priority
currency (:mod:`repro.sched.admission`): a request's score is the
per-client EWMA service-likelihood (the same
:class:`~repro.sched.admission.HitLikelihoodEstimator` machinery the
speculation admission uses per contract) times the client's fee weight
— exactly the ``likelihood × gas price`` formula speculation dispatch
ranks by, so edge shedding and speculation admission rank traffic in
the same currency.

Transitions have hysteresis (exit thresholds are a fraction of entry
thresholds) and a minimum dwell time, so the ladder cannot flap; every
transition is recorded with its simulated timestamp and trigger, and
the sequence is part of the byte-stable serving trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.registry import MetricsRegistry, get_registry
from repro.sched.admission import HitLikelihoodEstimator

LEVEL_FULL = 0
LEVEL_DEGRADED = 1
LEVEL_SHED = 2

LEVEL_NAMES = ("full", "degraded", "shed")


@dataclass
class BrownoutConfig:
    """Entry/exit thresholds of the ladder."""

    #: Total queued requests (all bulkheads) that enter level 1 / 2.
    depth_degraded: int = 12
    depth_shed: int = 28
    #: EWMA served latency (cost units) that enters level 1 / 2.
    latency_degraded: int = 60_000
    latency_shed: int = 180_000
    #: Exit when both gauges fall below ``exit_fraction`` of the entry
    #: thresholds (hysteresis band).
    exit_fraction: float = 0.5
    #: Minimum simulated seconds between transitions (no flapping).
    min_dwell_seconds: float = 1.0
    #: EWMA smoothing for the latency gauge.
    latency_alpha: float = 0.2
    #: Score floor a request must clear to be served while at
    #: ``shed`` (fraction of the highest client weight observed).
    shed_score_fraction: float = 0.5


@dataclass
class BrownoutTransition:
    """One recorded ladder move."""

    at: float
    old_level: int
    new_level: int
    reason: str
    depth: int
    ewma_latency: int

    def as_dict(self) -> dict:
        return {"at": round(self.at, 6),
                "from": LEVEL_NAMES[self.old_level],
                "to": LEVEL_NAMES[self.new_level],
                "reason": self.reason,
                "depth": self.depth,
                "ewma_latency": self.ewma_latency}


class BrownoutController:
    """Owns the ladder state and the shedding decision."""

    def __init__(self, config: Optional[BrownoutConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or BrownoutConfig()
        obs = (registry or get_registry()).scope("edge.brownout")
        self.g_level = obs.gauge("level")
        self.g_ewma = obs.gauge("ewma_latency_units")
        self.c_transitions = obs.counter("transitions")
        self.c_shed = obs.counter("shed")
        self.level = LEVEL_FULL
        self.ewma_latency = 0.0
        self.transitions: List[BrownoutTransition] = []
        self._last_transition_at = float("-inf")
        #: Per-client served-likelihood (the scheduler's estimator
        #: reused verbatim; clients whose requests keep completing keep
        #: scores near 1.0, chronically slow/failing clients decay).
        self.estimator = HitLikelihoodEstimator()
        self._max_weight_seen = 1.0

    # -- scoring (the scheduler's priority currency) ---------------------

    def score(self, client_id: int, weight: float) -> float:
        """Priority = served-likelihood × fee weight, mirroring
        ``AdmissionController.score`` (likelihood × gas price)."""
        self._max_weight_seen = max(self._max_weight_seen, weight)
        return self.estimator.likelihood(client_id) * weight

    def observe_outcome(self, client_id: int, served: bool) -> None:
        self.estimator.observe(client_id, served)

    # -- gauge updates ---------------------------------------------------

    def observe_latency(self, latency_units: float) -> None:
        alpha = self.config.latency_alpha
        self.ewma_latency = ((1.0 - alpha) * self.ewma_latency
                             + alpha * latency_units)
        self.g_ewma.set(int(self.ewma_latency))

    def observe(self, now: float, depth: int) -> int:
        """Re-evaluate the ladder; returns the (possibly new) level."""
        config = self.config
        ewma = self.ewma_latency
        if now - self._last_transition_at < config.min_dwell_seconds:
            return self.level
        target = self.level
        if depth >= config.depth_shed or ewma >= config.latency_shed:
            target = LEVEL_SHED
        elif (depth >= config.depth_degraded
                or ewma >= config.latency_degraded):
            target = max(self.level, LEVEL_DEGRADED) \
                if self.level >= LEVEL_DEGRADED else LEVEL_DEGRADED
        else:
            exit_depth = (config.depth_degraded if self.level ==
                          LEVEL_DEGRADED else config.depth_shed)
            exit_latency = (config.latency_degraded if self.level ==
                            LEVEL_DEGRADED else config.latency_shed)
            if (depth < exit_depth * config.exit_fraction
                    and ewma < exit_latency * config.exit_fraction):
                target = self.level - 1 if self.level > LEVEL_FULL \
                    else LEVEL_FULL
        if target != self.level:
            reason = ("depth" if (depth >= config.depth_degraded
                                  or target < self.level) else "latency")
            self.transitions.append(BrownoutTransition(
                at=now, old_level=self.level, new_level=target,
                reason=reason, depth=depth, ewma_latency=int(ewma)))
            self.level = target
            self.g_level.set(target)
            self.c_transitions.inc()
            self._last_transition_at = now
        return self.level

    # -- the shedding decision -------------------------------------------

    def admits(self, score: float, cheap: bool) -> bool:
        """May a request with ``score`` be served right now?

        ``cheap`` marks work the pipeline can answer without fresh
        on-demand execution (speculative/memoized/stale reads).
        """
        if self.level == LEVEL_FULL:
            return True
        if self.level == LEVEL_DEGRADED:
            if cheap:
                return True
            self.c_shed.inc()
            return False
        # LEVEL_SHED: cheap requests from top-priority clients only.
        floor = self._max_weight_seen * self.config.shed_score_fraction
        if cheap and score >= floor:
            return True
        self.c_shed.inc()
        return False

    def summary(self) -> dict:
        return {
            "level": LEVEL_NAMES[self.level],
            "ewma_latency_units": int(self.ewma_latency),
            "transitions": [t.as_dict() for t in self.transitions],
            "shed": self.c_shed.value,
        }
