"""JSON-RPC 2.0 framing for the serving edge.

The edge speaks a strict, bounded subset of JSON-RPC 2.0: every inbound
frame is parsed defensively (size caps, type checks, unknown-method
detection) and every outcome — including overload rejections — is a
*structured* response object encoded through
:func:`repro.obs.export.canonical_json`, so responses are byte-stable
run to run and a malformed or hostile frame can never surface as an
uncaught exception.

Beyond the standard error codes, the edge reserves a small range for
its overload-protection stack (backpressure, rate limiting, deadline
propagation, brownout shedding, circuit breaking); clients key their
retry policy off these codes — only :data:`RETRYABLE_CODES` are worth
retrying, the rest are permanent for the request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.obs.export import canonical_json

JSONRPC_VERSION = "2.0"

# -- standard JSON-RPC 2.0 error codes --------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- edge overload-protection codes (implementation-defined range) ----------
#: Per-method bulkhead queue is full: explicit backpressure.
OVERLOADED = -32005
#: The request's cost-unit deadline expired before (or while) queued;
#: the work was cancelled, never executed.
DEADLINE_EXCEEDED = -32008
#: Brownout ladder shed this request (level and reason in error.data).
SHED = -32009
#: Per-client token bucket is empty.
RATE_LIMITED = -32029
#: The method's circuit breaker is open (fail-fast).
BREAKER_OPEN = -32042

#: Codes a well-behaved client may retry (with backoff, carrying the
#: original deadline).  Everything else is permanent for the request.
RETRYABLE_CODES = (OVERLOADED, RATE_LIMITED)

ERROR_MESSAGES = {
    PARSE_ERROR: "parse error",
    INVALID_REQUEST: "invalid request",
    METHOD_NOT_FOUND: "method not found",
    INVALID_PARAMS: "invalid params",
    INTERNAL_ERROR: "internal error",
    OVERLOADED: "server overloaded",
    DEADLINE_EXCEEDED: "deadline exceeded",
    SHED: "brownout shed",
    RATE_LIMITED: "rate limited",
    BREAKER_OPEN: "circuit breaker open",
}

#: Hard cap on an inbound frame (bytes of raw text).
MAX_FRAME_BYTES = 64 * 1024
#: Hard cap on the params array length.
MAX_PARAMS = 8

#: Valid id types per the spec (None = notification-style; we answer
#: anyway so the client's accounting stays simple).
_ID_TYPES = (str, int, type(None))


@dataclass
class RpcRequest:
    """One validated inbound request."""

    method: str
    params: list = field(default_factory=list)
    id: Union[str, int, None] = None


class RpcError(Exception):
    """A structured JSON-RPC error (never escapes the edge)."""

    def __init__(self, code: int, message: Optional[str] = None,
                 data: Optional[dict] = None) -> None:
        self.code = code
        self.message = message or ERROR_MESSAGES.get(code, "error")
        self.data = data
        super().__init__(self.message)


def parse_request(raw: str) -> RpcRequest:
    """Parse and validate one raw frame; raises :class:`RpcError`.

    Defensive order matters: size first (so a giant frame is rejected
    before JSON decoding touches it), then JSON validity, then shape.
    """
    if not isinstance(raw, str):
        raise RpcError(PARSE_ERROR, data={"reason": "not text"})
    if len(raw) > MAX_FRAME_BYTES:
        raise RpcError(INVALID_REQUEST,
                       data={"reason": "frame too large",
                             "bytes": len(raw)})
    import json
    try:
        obj = json.loads(raw)
    except (ValueError, RecursionError):
        raise RpcError(PARSE_ERROR) from None
    if not isinstance(obj, dict):
        raise RpcError(INVALID_REQUEST, data={"reason": "not an object"})
    req_id = obj.get("id")
    if not isinstance(req_id, _ID_TYPES) or isinstance(req_id, bool):
        raise RpcError(INVALID_REQUEST, data={"reason": "bad id type"})
    if obj.get("jsonrpc") != JSONRPC_VERSION:
        raise RpcError(INVALID_REQUEST,
                       data={"reason": "bad jsonrpc version"})
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise RpcError(INVALID_REQUEST, data={"reason": "bad method"})
    params = obj.get("params", [])
    if not isinstance(params, list):
        raise RpcError(INVALID_REQUEST, data={"reason": "params not a list"})
    if len(params) > MAX_PARAMS:
        raise RpcError(INVALID_PARAMS,
                       data={"reason": "too many params",
                             "count": len(params)})
    return RpcRequest(method=method, params=params, id=req_id)


def success_response(req_id, result) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": req_id, "result": result}


def error_response(req_id, code: int, message: Optional[str] = None,
                   data: Optional[dict] = None) -> dict:
    error = {"code": code,
             "message": message or ERROR_MESSAGES.get(code, "error")}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": req_id, "error": error}


def encode(response: dict) -> str:
    """Canonical single-line encoding (byte-stable run to run)."""
    return canonical_json(response)


def make_request(method: str, params: list, req_id) -> str:
    """Encode one outbound client frame (the load generator's side)."""
    return canonical_json({"jsonrpc": JSONRPC_VERSION, "id": req_id,
                           "method": method, "params": params})


def response_error_code(response: dict) -> Optional[int]:
    """The error code of an encoded-side response dict, if any."""
    error = response.get("error")
    if isinstance(error, dict):
        return error.get("code")
    return None


def is_retryable(code: Optional[int]) -> bool:
    return code in RETRYABLE_CODES


def classify(code: Optional[int]) -> Tuple[str, bool]:
    """(status label, counts-toward-goodput) for a response code."""
    if code is None:
        return "served", True
    labels = {
        PARSE_ERROR: "parse_error",
        INVALID_REQUEST: "invalid_request",
        METHOD_NOT_FOUND: "method_not_found",
        INVALID_PARAMS: "invalid_params",
        INTERNAL_ERROR: "internal_error",
        OVERLOADED: "backpressure",
        DEADLINE_EXCEEDED: "deadline_expired",
        SHED: "shed",
        RATE_LIMITED: "rate_limited",
        BREAKER_OPEN: "breaker_open",
    }
    return labels.get(code, "error"), False
