"""The serving loop: one node, one edge, one request schedule.

Merges the dataset's replay timeline (transaction gossip, speculation
ticks, block arrivals — the same event-heap discipline as
:func:`repro.sim.emulator.replay`) with the client schedule from
:mod:`repro.edge.clients` and drives everything through one
:class:`~repro.edge.server.EdgeServer` in deterministic time order.

Retries are scheduled here (the clients' side of the protocol): a
retryable rejection consults the shared :class:`~repro.edge.limits.
RetryBudget` and re-fires later *with the original deadline*.  The
``edge.request_storm`` chaos site amplifies an arrival into duplicate
frames at the same instant.

The run's byte-stable artifact is the serving trace: one canonical
JSON line per handled frame (request identity, outcome accounting, and
the full response).  Two runs of the same seed produce byte-identical
traces at every load level.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.node import ForerunnerConfig, ForerunnerNode
from repro.edge import rpc
from repro.edge.faults import SITE_STORM, STORM_COPIES
from repro.edge.journal import AcceptedTxLog
from repro.edge.limits import Deadline, RetryBudget, RetryConfig
from repro.edge.server import EdgeConfig, EdgeServer
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry

#: Event priorities: gossip < ticks < blocks < requests, so a request
#: arriving exactly at a block boundary sees the committed state.
PRIO_TX = 0
PRIO_TICK = 1
PRIO_BLOCK = 2
PRIO_REQUEST = 3


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    dataset_name: str
    offered: int = 0
    good: int = 0
    storm_copies: int = 0
    retries_scheduled: int = 0
    trace_lines: List[str] = field(default_factory=list)
    served_latencies: List[int] = field(default_factory=list)
    final_status: Dict[Tuple[int, str], str] = field(default_factory=dict)
    server: Optional[EdgeServer] = None
    node: Optional[ForerunnerNode] = None
    retry_budget: Optional[RetryBudget] = None
    injector: object = NULL_INJECTOR

    @property
    def goodput(self) -> float:
        return self.good / self.offered if self.offered else 1.0

    def state_roots(self) -> List[int]:
        return [report.state_root for report in self.node.reports]

    def commitments(self) -> list:
        """The plain-semantics commitments (the containment anchor):
        per-block state roots plus each transaction's receipt core."""
        return [
            {"block": report.block_number,
             "root": report.state_root,
             "receipts": [(record.tx_hash, record.gas_used,
                           record.success)
                          for record in report.records]}
            for report in self.node.reports]


def run_serving(dataset, scenario,
                edge_config: Optional[EdgeConfig] = None,
                node_config: Optional[ForerunnerConfig] = None,
                fault_plan=None,
                retry_config: Optional[RetryConfig] = None,
                retry_seed: int = 0,
                observer: str = "live",
                speculation_tick: float = 2.0,
                accepted_log_path: Optional[str] = None,
                registry: Optional[MetricsRegistry] = None
                ) -> ServingResult:
    """Serve ``scenario`` against a node replaying ``dataset``.

    ``fault_plan`` is an *edge* fault plan
    (:func:`repro.edge.faults.edge_fault_plan`); the node itself runs
    clean — edge chaos must never reach node commitments, and the
    containment tests compare exactly that.
    """
    registry = registry or MetricsRegistry()
    node = ForerunnerNode(dataset.genesis_world.copy(),
                          node_config or ForerunnerConfig(),
                          registry=registry)
    node.predictor.observe_block(dataset.genesis_block)
    injector = (FaultInjector(fault_plan, registry=registry)
                if fault_plan is not None else NULL_INJECTOR)
    accepted_log = (AcceptedTxLog(accepted_log_path, obs=registry)
                    if accepted_log_path else None)
    server = EdgeServer(node, edge_config or EdgeConfig(),
                        registry=registry, injector=injector,
                        accepted_log=accepted_log)
    retry_budget = RetryBudget(retry_config, seed=retry_seed)
    result = ServingResult(dataset_name=dataset.name, server=server,
                           node=node, retry_budget=retry_budget,
                           injector=injector)

    events: List[tuple] = []
    counter = 0
    for arrival, tx in dataset.tx_arrivals.get(observer, []):
        events.append((arrival, PRIO_TX, counter, ("tx", tx)))
        counter += 1
    horizon = dataset.blocks[-1][0] if dataset.blocks else 0.0
    tick = speculation_tick
    while tick < horizon:
        events.append((tick, PRIO_TICK, counter, ("tick", None)))
        counter += 1
        tick += speculation_tick
    for arrival, block in dataset.blocks:
        events.append((arrival, PRIO_BLOCK, counter, ("block", block)))
        counter += 1
    for request in scenario:
        events.append((request.at, PRIO_REQUEST, counter,
                       ("request", (request, 1, None, True))))
        counter += 1
    result.offered = len(scenario)
    heapq.heapify(events)

    def handle(now: float, request, attempt: int,
               deadline: Optional[Deadline], count: bool = True) -> None:
        nonlocal counter
        if deadline is None:
            deadline = Deadline.from_budget(
                now, request.deadline_units, server.config.service_rate)
        response, outcome = server.handle_raw(
            request.raw, request.client_id, now,
            weight=request.weight, deadline=deadline, attempt=attempt)
        result.trace_lines.append(canonical_json({
            "t": round(now, 6), "id": request.req_id,
            "client": request.client_id, "attempt": attempt,
            "copy": not count,
            "outcome": outcome.as_dict(), "response": response}))
        if not count:
            # A storm copy: pure interference — it neither resolves the
            # original request nor earns its own retries.
            return
        key = (request.client_id, request.req_id)
        result.final_status[key] = outcome.status
        if outcome.status == "served":
            result.served_latencies.append(outcome.latency_units)
            if attempt == 1:
                retry_budget.on_success()
            return
        if rpc.is_retryable(outcome.code):
            retry_at = retry_budget.next_retry(
                request.client_id, attempt, now, deadline)
            if retry_at is not None:
                result.retries_scheduled += 1
                heapq.heappush(events, (retry_at, PRIO_REQUEST, counter,
                                        ("request",
                                         (request, attempt + 1,
                                          deadline, False))))
                counter += 1

    while events:
        now, _, _, (kind, payload) = heapq.heappop(events)
        if kind == "tx":
            node.on_transaction(payload, now)
        elif kind == "tick":
            node.run_speculation(now)
        elif kind == "block":
            node.run_speculation(now)
            report = node.process_block(payload, now)
            server.on_block(payload, report)
        else:
            request, attempt, deadline, original = payload
            # Chaos: a request storm amplifies this arrival into
            # duplicate frames at the same instant (clients count each
            # original once; the copies are pure interference).
            if original and injector.evaluate(
                    SITE_STORM, client=request.client_id) is not None:
                for _ in range(STORM_COPIES):
                    result.storm_copies += 1
                    handle(now, request, attempt, None, count=False)
            handle(now, request, attempt, deadline)

    if accepted_log is not None:
        accepted_log.close()
    result.good = sum(1 for status in result.final_status.values()
                      if status == "served")
    return result
