"""repro.edge — the overload-resilient JSON-RPC serving edge.

A deterministic, single-process simulation of the serving front end a
production Forerunner deployment would put in front of its nodes:
JSON-RPC requests answered from the speculation pipeline where
possible, with per-method bulkheads, cost-unit deadline propagation,
per-client rate limiting, a three-level brownout ladder, and per-method
circuit breaking.  See ``docs/EDGE.md``.
"""

from repro.edge.brownout import (  # noqa: F401
    BrownoutConfig,
    BrownoutController,
    LEVEL_DEGRADED,
    LEVEL_FULL,
    LEVEL_NAMES,
    LEVEL_SHED,
)
from repro.edge.clients import (  # noqa: F401
    ScenarioConfig,
    ScheduledRequest,
    build_scenario,
)
from repro.edge.journal import (  # noqa: F401
    AcceptedTxLog,
    recover_accepted,
    restore_pool,
)
from repro.edge.limits import (  # noqa: F401
    Bulkhead,
    Deadline,
    RetryBudget,
    RetryConfig,
    TokenBucket,
)
from repro.edge.report import build_report, format_report  # noqa: F401
from repro.edge.serve import ServingResult, run_serving  # noqa: F401
from repro.edge.server import EdgeConfig, EdgeServer, METHODS  # noqa: F401
