"""Deterministic simulated client load for the serving edge.

The load generator turns a recorded dataset into an open-loop request
schedule: clients fire requests at seeded arrival times regardless of
how the edge is coping (which is exactly what makes overload possible),
and every request references *real* dataset content —

* receipt / trace lookups target transactions the dataset will commit
  (mostly ones already committed at request time),
* ``eth_call`` shapes are drawn from transactions currently in flight
  (gossiped but not yet committed), so the edge's speculative fast
  path — a ready accelerated program for the matching pending
  transaction — genuinely fires,
* ``eth_sendRawTransaction`` submits upcoming dataset transactions
  slightly ahead of their gossip arrival, so the edge's accepted-tx
  journal and the scheduler's deadline stamps cover transactions that
  really commit.

Three arrival shapes model the overload patterns the ISSUE calls out:
``steady`` (Poisson arrivals), ``burst`` (a thundering herd around
every block arrival), and ``slow`` (a patient, low-rate client whose
requests carry extended deadlines — the chaos ``edge.slow_client``
site adds the drip-feed service-time stall).

Every draw comes from a per-client seeded RNG stream, so the schedule
is byte-identical run to run and one client's traffic never perturbs
another's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.edge import rpc
from repro.utils.hashing import hash_words, keccak_int

SHAPE_STEADY = "steady"
SHAPE_BURST = "burst"
SHAPE_SLOW = "slow"

#: Method mix (weights) of the canonical read-heavy serving workload.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("eth_getTransactionReceipt", 0.40),
    ("eth_call", 0.30),
    ("debug_traceTransaction", 0.15),
    ("eth_sendRawTransaction", 0.15),
)


@dataclass
class ScenarioConfig:
    """Tunables of one serving scenario."""

    seed: int = 0
    #: Offered-load multiplier (1.0 = the calibrated base rate).
    load: float = 1.0
    #: Per-client request rate at 1x load (requests per simulated
    #: second, before the shape modulates it).
    base_rate: float = 1.2
    clients: int = 6
    #: How many of the clients are thundering-herd / slow shaped.
    burst_clients: int = 2
    slow_clients: int = 1
    #: Burst shape: rate multiplier inside the herd window.
    burst_factor: float = 8.0
    burst_window_seconds: float = 1.5
    #: Cost-unit deadline budget attached to each request.
    deadline_units: int = 120_000
    #: Slow clients are patient: their budget is multiplied by this.
    slow_deadline_factor: int = 4
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX


@dataclass
class ScheduledRequest:
    """One client request with its precomputed arrival time."""

    at: float
    client_id: int
    req_id: str
    method: str
    params: list
    weight: float
    deadline_units: int
    raw: str = field(default="", repr=False)


def client_shape(config: ScenarioConfig, client_id: int) -> str:
    if client_id < config.burst_clients:
        return SHAPE_BURST
    if client_id < config.burst_clients + config.slow_clients:
        return SHAPE_SLOW
    return SHAPE_STEADY


def client_weight(client_id: int) -> float:
    """Deterministic fee weight (the brownout's priority input)."""
    return 0.5 + 0.5 * (client_id % 4)


def _client_rng(seed: int, client_id: int):
    import random
    return random.Random(hash_words(
        (seed, keccak_int(b"edge.client"), client_id)))


def _pick_weighted(rng, mix) -> str:
    total = sum(weight for _, weight in mix)
    draw = rng.random() * total
    for method, weight in mix:
        draw -= weight
        if draw <= 0:
            return method
    return mix[-1][0]


def _tx_params(tx) -> dict:
    return {"from": tx.sender, "to": tx.to, "data": "0x" + tx.data.hex(),
            "value": tx.value, "gasPrice": tx.gas_price,
            "gas": tx.gas_limit, "nonce": tx.nonce}


def _call_params(tx) -> dict:
    return {"from": tx.sender, "to": tx.to, "data": "0x" + tx.data.hex(),
            "value": tx.value}


def build_scenario(dataset, config: Optional[ScenarioConfig] = None,
                   observer: str = "live") -> List[ScheduledRequest]:
    """The full request schedule for one serving run, time-sorted.

    Deterministic: same dataset + config -> byte-identical schedule.
    """
    config = config or ScenarioConfig()
    blocks = dataset.blocks
    if not blocks:
        return []
    horizon = blocks[-1][0]
    block_times = [arrival for arrival, _ in blocks]
    # Commit time of every transaction (receipt/trace targets).
    committed: List[Tuple[float, object]] = []
    for arrival, block in blocks:
        for tx in block.transactions:
            committed.append((arrival, tx))
    # Gossip window of every transaction (eth_call AP-hit targets):
    # heard at `heard`, committed at commit_of[tx.hash].
    commit_of: Dict[int, float] = {tx.hash: at for at, tx in committed}
    arrivals = dataset.tx_arrivals.get(observer, [])
    in_flight: List[Tuple[float, float, object]] = [
        (heard, commit_of.get(tx.hash, horizon), tx)
        for heard, tx in arrivals]
    requests: List[ScheduledRequest] = []
    for client_id in range(config.clients):
        rng = _client_rng(config.seed, client_id)
        shape = client_shape(config, client_id)
        weight = client_weight(client_id)
        rate = config.base_rate * config.load
        if shape == SHAPE_SLOW:
            rate *= 0.5
        deadline_units = config.deadline_units
        if shape == SHAPE_SLOW:
            deadline_units *= config.slow_deadline_factor
        now, seq = 0.0, 0
        # Pointer into the committed tx list for this client's sends
        # (spread across clients so sends do not all duplicate).
        send_cursor = client_id
        while True:
            effective = rate
            if shape == SHAPE_BURST and _in_burst(now, block_times,
                                                  config):
                effective = rate * config.burst_factor
            now += rng.expovariate(effective)
            if now >= horizon:
                break
            method = _pick_weighted(rng, config.mix)
            params, send_cursor = _build_params(
                method, now, rng, committed, in_flight, send_cursor,
                config.clients)
            if params is None:
                continue
            req_id = f"c{client_id}-{seq}"
            requests.append(ScheduledRequest(
                at=now, client_id=client_id, req_id=req_id,
                method=method, params=params, weight=weight,
                deadline_units=deadline_units,
                raw=rpc.make_request(method, params, req_id)))
            seq += 1
    requests.sort(key=lambda r: (r.at, r.client_id, r.req_id))
    return requests


def _in_burst(now: float, block_times: List[float],
              config: ScenarioConfig) -> bool:
    """Is ``now`` inside a thundering-herd window after a block?"""
    import bisect
    index = bisect.bisect_right(block_times, now)
    if index == 0:
        return False
    return now - block_times[index - 1] <= config.burst_window_seconds


def _build_params(method: str, now: float, rng, committed, in_flight,
                  send_cursor: int, stride: int):
    """Request params referencing real dataset content."""
    if method == "eth_getTransactionReceipt" \
            or method == "debug_traceTransaction":
        # Mostly transactions already committed (a real answer);
        # sometimes a future one (a well-formed null response).
        ready = [tx for at, tx in committed if at <= now]
        pool = ready if ready and rng.random() < 0.8 \
            else [tx for _, tx in committed]
        tx = pool[rng.randrange(len(pool))]
        return [f"{tx.hash:#x}"], send_cursor
    if method == "eth_call":
        # Prefer a transaction currently in flight (gossiped, not yet
        # committed): its shape matches a pending-pool entry, so the
        # edge can answer from a ready accelerated program.
        flight = [tx for heard, commit, tx in in_flight
                  if heard <= now < commit]
        if flight and rng.random() < 0.7:
            tx = flight[rng.randrange(len(flight))]
        else:
            tx = committed[rng.randrange(len(committed))][1]
        return [_call_params(tx)], send_cursor
    # eth_sendRawTransaction: submit an upcoming dataset transaction
    # (round-robin striped across clients).
    future = [tx for at, tx in committed if at > now]
    if not future:
        return None, send_cursor
    index = send_cursor % len(future)
    return [_tx_params(future[index])], send_cursor + stride
