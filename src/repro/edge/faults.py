"""Edge fault sites for the chaos framework.

Four sites cover the serving edge's hostile-input surface:

========================== ===============================================
``edge.malformed_request``  corrupt the raw frame before parsing (seeded
                            truncation/garbling) — must yield a
                            structured parse error, never an exception
``edge.slow_client``        a client drip-feeds its request: stall cost
                            units added to the request's service time,
                            occupying bulkhead capacity
``edge.request_storm``      the request is duplicated (amplified) at
                            arrival; rate limiting and backpressure must
                            absorb the storm
``edge.handler_stall``      the handler stalls for cost units mid-
                            execution; repeated deadline blow-outs trip
                            the method's circuit breaker
========================== ===============================================

Like the ``recovery.*`` crash sites, these are deliberately *not* part
of :data:`repro.faults.injector.SITES`: generic pipeline chaos plans
(``FaultPlan.uniform``) target the speculation pipeline, whose replay
never evaluates edge sites — an edge plan is built here instead and
driven through a serving scenario (``repro chaos --edge`` and the
per-site sweep in ``tests/test_edge_chaos.py``).

The containment contract mirrors the pipeline's: a faulted request can
only ever change *that request's* response (to a structured error or a
slower serve) — committed node state, receipts, and Merkle roots are
byte-identical to a fault-free serving run.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.faults.injector import (
    KIND_CORRUPT,
    KIND_DUPLICATE,
    KIND_STALL,
    FaultPlan,
    FaultRule,
)

SITE_MALFORMED = "edge.malformed_request"
SITE_SLOW_CLIENT = "edge.slow_client"
SITE_STORM = "edge.request_storm"
SITE_HANDLER_STALL = "edge.handler_stall"

EDGE_SITE_KINDS: Dict[str, str] = {
    SITE_MALFORMED: KIND_CORRUPT,
    SITE_SLOW_CLIENT: KIND_STALL,
    SITE_STORM: KIND_DUPLICATE,
    SITE_HANDLER_STALL: KIND_STALL,
}

EDGE_SITES: Tuple[str, ...] = tuple(EDGE_SITE_KINDS)

#: Default slow-client stall (cost units of connection occupancy).
DEFAULT_SLOW_CLIENT_UNITS = 30_000
#: Default handler stall (cost units; sized to threaten deadlines).
DEFAULT_HANDLER_STALL_UNITS = 80_000
#: Copies a request storm delivers beyond the original.
STORM_COPIES = 4


def edge_fault_plan(seed: int, probability: float,
                    sites: Optional[Tuple[str, ...]] = None) -> FaultPlan:
    """A uniform plan over the edge sites (kind-appropriate rules)."""
    chosen = sites if sites is not None else EDGE_SITES
    magnitudes = {
        SITE_SLOW_CLIENT: DEFAULT_SLOW_CLIENT_UNITS,
        SITE_HANDLER_STALL: DEFAULT_HANDLER_STALL_UNITS,
    }
    rules = tuple(
        FaultRule(site=site, kind=EDGE_SITE_KINDS[site],
                  probability=probability,
                  magnitude=magnitudes.get(site, 0.0))
        for site in chosen)
    return FaultPlan(seed=seed, rules=rules)


def corrupt_frame(raw: str, rng: random.Random) -> str:
    """Deterministically mangle one raw frame (the ``corrupt`` kind).

    Three mangle modes — truncation, byte garbling, and type swap —
    all of which must surface as a structured parse/invalid error.
    """
    mode = rng.randrange(3)
    if mode == 0 and len(raw) > 2:
        return raw[:rng.randrange(1, len(raw))]
    if mode == 1 and raw:
        index = rng.randrange(len(raw))
        return raw[:index] + chr(0x21 + rng.randrange(64)) + raw[index + 1:]
    return "[" + raw
