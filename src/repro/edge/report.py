"""Canonical serving reports: goodput, latency percentiles, brownout
history — the deterministic summary of one serving run.

Percentiles use the nearest-rank method over the sorted latency list,
so the numbers are exact integers (cost units) with no interpolation —
a report is byte-stable across platforms.
"""

from __future__ import annotations

from typing import List, Optional

SCHEMA_VERSION = 1


def percentile(sorted_values: List[int], fraction: float) -> int:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0
    rank = max(1, int(round(fraction * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def build_report(result, meta: Optional[dict] = None) -> dict:
    """The canonical serving report for one :class:`ServingResult`."""
    latencies = sorted(result.served_latencies)
    server = result.server
    report = {
        "schema": SCHEMA_VERSION,
        "dataset": result.dataset_name,
        "offered": result.offered,
        "good": result.good,
        "goodput": round(result.goodput, 6),
        "latency_units": {
            "p50": percentile(latencies, 0.50),
            "p99": percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0,
        },
        "retries": {
            "scheduled": result.retries_scheduled,
            "budget_spent": result.retry_budget.spent
            if result.retry_budget else 0,
            "budget_denied": result.retry_budget.denied
            if result.retry_budget else 0,
        },
        "storm_copies": result.storm_copies,
        "edge": server.summary(),
        "sched": {
            "expired": result.node.admission.c_expired.value,
            "dispatched": result.node.admission.c_dispatched.value,
        },
        "blocks": len(result.node.reports),
        "state_roots": [f"{root:#x}" for root in result.state_roots()],
    }
    if getattr(result.injector, "enabled", False):
        report["faults"] = result.injector.fire_summary()
    if meta:
        report["meta"] = meta
    return report


def format_report(report: dict) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    edge = report["edge"]
    brownout = edge["brownout"]
    lines = [
        f"serving report — dataset {report['dataset']}",
        f"  offered {report['offered']}  good {report['good']}  "
        f"goodput {report['goodput']:.3f}",
        f"  latency (cost units)  p50 {report['latency_units']['p50']}"
        f"  p99 {report['latency_units']['p99']}"
        f"  max {report['latency_units']['max']}",
        f"  accepted txs {edge['accepted_txs']}  "
        f"backpressure {edge['backpressure']}  "
        f"rate-limited {edge['rate_limited']}  "
        f"shed {brownout['shed']}",
        f"  deadlines: cancelled {edge['deadline_cancelled']}  "
        f"overrun {edge['deadline_overrun']}  "
        f"sched-expired {report['sched']['expired']}",
        f"  eth_call paths: memo {edge['call_memo_hits']}  "
        f"ap {edge['call_ap_hits']}  plain {edge['call_plain']}  "
        f"stale {edge['stale_reads']}",
        f"  retries: scheduled {report['retries']['scheduled']}  "
        f"denied {report['retries']['budget_denied']}",
        "  per-method (requests/served/rejected):",
    ]
    for method, row in sorted(edge["per_method"].items()):
        lines.append(f"    {method:26s} {row['requests']:5d} "
                     f"{row['served']:5d} {row['rejected']:5d}")
    lines.append(f"  brownout level {brownout['level']}  "
                 f"transitions {len(brownout['transitions'])}")
    for transition in brownout["transitions"]:
        lines.append(f"    t={transition['at']:9.3f}  "
                     f"{transition['from']} -> {transition['to']}  "
                     f"({transition['reason']}, depth "
                     f"{transition['depth']}, ewma "
                     f"{transition['ewma_latency']})")
    if "faults" in report:
        lines.append(f"  faults fired: {report['faults']}")
    return "\n".join(lines)
