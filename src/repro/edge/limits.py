"""Admission limits for the serving edge: deadlines, rate limits,
bulkheads, and the client retry budget.

Everything is denominated in the reproduction's deterministic
currencies — cost units for work, simulated seconds for time — and
every random draw (retry jitter) comes from seeded per-client RNG
streams, so two runs of the same scenario are byte-identical.

* :class:`Deadline` — a cost-unit budget stamped at admission and
  carried through the request's whole lifetime (queueing, handler
  execution, retries).  Work whose deadline has expired is *cancelled*,
  never executed.
* :class:`TokenBucket` — per-client rate limiting with deterministic
  continuous refill on the simulated clock.
* :class:`Bulkhead` — one bounded single-server queue per method.  The
  queue is resolved lazily in arrival order: the server's availability
  clock advances by each executed request's cost units, so queue wait
  and service latency are exact deterministic quantities, and a full
  queue is an *explicit* backpressure signal rather than unbounded
  memory growth.
* :class:`RetryBudget` — client-side retry discipline: bounded
  attempts, exponential backoff with seeded jitter, and a global retry
  token pool so storms of retries cannot amplify an overload.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.hashing import hash_words, keccak_int


class LruMap:
    """A bounded mapping with deterministic least-recently-used
    eviction.

    Per-client state maps at the edge (token buckets, retry jitter
    streams) would otherwise grow one entry per distinct client id ever
    seen — an unbounded-memory liability under address-rotating storms.
    ``LruMap`` caps them: a read or write moves the key to the
    most-recent end, and inserting past ``capacity`` evicts exactly the
    least-recently-used key.  Eviction order is a pure function of the
    access sequence, so two runs of the same scenario evict the same
    keys at the same points and stay byte-identical.  An evicted
    client that returns is rebuilt from its seeded initial state —
    deterministic, merely forgetful.
    """

    __slots__ = ("capacity", "evictions", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LruMap capacity must be >= 1")
        self.capacity = capacity
        self.evictions = 0
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key):
        """The value for ``key`` (touching it), or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def set(self, key, value) -> None:
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key, default=None):
        """Remove and return the value for ``key`` (or ``default``)."""
        return self._data.pop(key, default)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()


@dataclass(frozen=True)
class Deadline:
    """A request deadline: absolute simulated-seconds expiry.

    ``budget_units`` records the original cost-unit budget the client
    attached (for reporting); ``expires_at`` is the absolute simulated
    time it translates to at the edge's service rate.  Retries carry
    the *original* deadline — backing off never buys more time.
    """

    expires_at: float
    budget_units: int

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    @classmethod
    def from_budget(cls, now: float, budget_units: int,
                    service_rate: float) -> "Deadline":
        return cls(expires_at=now + budget_units / service_rate,
                   budget_units=budget_units)


class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    __slots__ = ("capacity", "refill_per_second", "tokens", "updated")

    def __init__(self, capacity: float, refill_per_second: float) -> None:
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self.tokens = capacity
        self.updated = 0.0

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self.updated) * self.refill_per_second)
            self.updated = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def level(self, now: float) -> float:
        self._refill(now)
        return self.tokens


class Bulkhead:
    """One bounded single-server FIFO queue (per-method isolation).

    The server is modelled by an availability clock in simulated
    seconds; each admitted request occupies it for ``cost / rate``
    seconds.  Because arrivals are processed in global time order, a
    request's start time — and therefore its queue wait, its deadline
    fate, and the queue depth any later arrival observes — is exact at
    admission time.  ``depth(now)`` counts requests whose service has
    not finished by ``now``; admission beyond ``capacity`` is refused
    (the explicit backpressure signal).
    """

    __slots__ = ("method", "capacity", "service_rate", "free_at",
                 "_inflight")

    def __init__(self, method: str, capacity: int,
                 service_rate: float) -> None:
        self.method = method
        self.capacity = capacity
        self.service_rate = service_rate
        #: Simulated time the server becomes idle.
        self.free_at = 0.0
        #: Finish times of queued/in-service requests (ascending).
        self._inflight: List[float] = []

    def depth(self, now: float) -> int:
        """Requests still queued or in service at ``now``."""
        while self._inflight and self._inflight[0] <= now:
            self._inflight.pop(0)
        return len(self._inflight)

    def has_room(self, now: float) -> bool:
        return self.depth(now) < self.capacity

    def start_time(self, now: float) -> float:
        """When a request admitted at ``now`` would begin service."""
        return max(now, self.free_at)

    def occupy(self, now: float, cost_units: float) -> Tuple[float, float]:
        """Admit one request costing ``cost_units``; returns
        ``(start, finish)`` in simulated seconds and advances the
        server clock."""
        start = self.start_time(now)
        finish = start + cost_units / self.service_rate
        self.free_at = finish
        self._inflight.append(finish)
        return start, finish

    def wait_units(self, now: float) -> float:
        """Backlog ahead of a new arrival, in cost units."""
        return max(0.0, self.free_at - now) * self.service_rate


@dataclass
class RetryConfig:
    """Client retry discipline (deterministic)."""

    max_attempts: int = 3
    #: Simulated seconds before the first retry.
    base_backoff_seconds: float = 0.25
    backoff_factor: float = 2.0
    #: Uniform jitter fraction applied to each backoff (seeded draw).
    jitter_fraction: float = 0.5
    #: Global retry token pool: one token per retry, refilled by a
    #: fraction of each *successful* first-attempt response.  Bounds
    #: total retry amplification under sustained overload.
    budget_tokens: float = 64.0
    budget_refill_per_success: float = 0.1
    #: Bound on live per-client jitter streams (LRU-evicted beyond it).
    client_state_capacity: int = 4096


class RetryBudget:
    """Retry bookkeeping shared by all simulated clients.

    Per-client jitter streams are seeded from ``(seed, client_id)`` so
    a client's draws depend only on its own retry sequence — adding or
    removing another client's traffic never perturbs them.
    """

    def __init__(self, config: Optional[RetryConfig] = None,
                 seed: int = 0) -> None:
        self.config = config or RetryConfig()
        self.seed = seed
        self.tokens = self.config.budget_tokens
        self.spent = 0
        self.denied = 0
        self._rngs = LruMap(self.config.client_state_capacity)

    def _rng(self, client_id: int) -> random.Random:
        rng = self._rngs.get(client_id)
        if rng is None:
            rng = random.Random(hash_words(
                (self.seed, keccak_int(b"edge.retry"), client_id)))
            self._rngs.set(client_id, rng)
        return rng

    def on_success(self) -> None:
        self.tokens = min(self.config.budget_tokens,
                          self.tokens + self.config.budget_refill_per_success)

    def next_retry(self, client_id: int, attempt: int,
                   now: float, deadline: Deadline
                   ) -> Optional[float]:
        """Schedule a retry, or None when the budget says stop.

        ``attempt`` is 1-based (the attempt that just failed).  The
        retry fires at ``now + backoff + jitter`` and still carries the
        original ``deadline`` — a retry that could only land after
        expiry is not scheduled at all.
        """
        config = self.config
        if attempt >= config.max_attempts:
            return None
        if self.tokens < 1.0:
            self.denied += 1
            return None
        backoff = (config.base_backoff_seconds
                   * (config.backoff_factor ** (attempt - 1)))
        jitter = self._rng(client_id).uniform(
            0.0, config.jitter_fraction * backoff)
        at = now + backoff + jitter
        if deadline.expired(at):
            return None
        self.tokens -= 1.0
        self.spent += 1
        return at
